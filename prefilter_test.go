package mincore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// messyPoints builds a seeded random cloud salted with exact duplicates
// and collinear (segment-midpoint) points — the inputs most likely to
// expose a prefilter that mishandles non-extreme or degenerate points.
func messyPoints(n, d int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, n+n/2)
	for i := 0; i < n; i++ {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.NormFloat64()*2 + 3
		}
		pts = append(pts, p)
	}
	// Exact duplicates of existing points.
	for i := 0; i < n/4; i++ {
		src := pts[rng.Intn(n)]
		pts = append(pts, append(Point(nil), src...))
	}
	// Midpoints of random pairs: collinear with (and dominated by) their
	// endpoints, so they are never hull vertices.
	for i := 0; i < n/4; i++ {
		a, b := pts[rng.Intn(n)], pts[rng.Intn(n)]
		m := make(Point, d)
		for j := range m {
			m[j] = (a[j] + b[j]) / 2
		}
		pts = append(pts, m)
	}
	return pts
}

// coresetsEqualBitwise asserts two coresets are identical: same indices
// in the same order and bitwise-equal measured loss.
func coresetsEqualBitwise(t *testing.T, a, b *Coreset, label string) {
	t.Helper()
	if len(a.Indices) != len(b.Indices) {
		t.Fatalf("%s: |Q| %d vs %d", label, len(a.Indices), len(b.Indices))
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("%s: index %d: %d vs %d", label, i, a.Indices[i], b.Indices[i])
		}
	}
	if math.Float64bits(a.Loss) != math.Float64bits(b.Loss) {
		t.Fatalf("%s: loss %v (%x) vs %v (%x)", label,
			a.Loss, math.Float64bits(a.Loss), b.Loss, math.Float64bits(b.Loss))
	}
}

// The prefilter is exact: for random instances with duplicates and
// collinear interior points, builds with the prefilter on and off must
// return identical indices and bitwise-identical measured loss, for
// every extreme-point algorithm.
func TestPrefilterExactness(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		pts := messyPoints(300, d, int64(100+d))
		on, err := New(pts, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		off, err := New(pts, WithSeed(7), WithPrefilter(false))
		if err != nil {
			t.Fatal(err)
		}
		if !on.prefiltered() {
			t.Fatalf("d=%d: prefilter inactive (ξ=%d, n=%d)", d, on.NumExtreme(), on.N())
		}
		if off.prefiltered() {
			t.Fatalf("d=%d: WithPrefilter(false) left the prefilter on", d)
		}
		for _, algo := range []Algorithm{Auto, DSMC, SCMC} {
			qOn, err := on.Coreset(0.1, algo)
			if err != nil {
				t.Fatalf("d=%d %s prefilter on: %v", d, algo, err)
			}
			qOff, err := off.Coreset(0.1, algo)
			if err != nil {
				t.Fatalf("d=%d %s prefilter off: %v", d, algo, err)
			}
			coresetsEqualBitwise(t, qOn, qOff, fmt.Sprintf("d=%d %s", d, algo))
			if !qOn.Report.Prefiltered {
				t.Fatalf("d=%d %s: report does not mark the prefiltered build", d, algo)
			}
			if qOff.Report.Prefiltered {
				t.Fatalf("d=%d %s: unfiltered build marked prefiltered", d, algo)
			}
		}
	}
}

// Degenerate inputs must behave identically with the prefilter on and
// off: a single point and an all-duplicate set (both collapse to one
// point, rejected as all-constant), and an all-collinear set.
func TestPrefilterDegenerateInputs(t *testing.T) {
	single := []Point{{1, 2, 3}}
	dup := make([]Point, 50)
	for i := range dup {
		dup[i] = Point{4, 5}
	}
	line := make([]Point, 80)
	for i := range line {
		s := float64(i) / 79
		line[i] = Point{s, 2 * s, -s} // non-axis-aligned line through origin
	}
	cases := []struct {
		name string
		pts  []Point
	}{{"single", single}, {"all-duplicate", dup}, {"all-collinear", line}}
	for _, tc := range cases {
		csOn, errOn := New(tc.pts, WithSeed(3))
		csOff, errOff := New(tc.pts, WithSeed(3), WithPrefilter(false))
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%s: construction disagrees: on=%v off=%v", tc.name, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		qOn, errOn := csOn.Coreset(0.2, Auto)
		qOff, errOff := csOff.Coreset(0.2, Auto)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%s: build disagrees: on=%v off=%v", tc.name, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		coresetsEqualBitwise(t, qOn, qOff, tc.name)
	}
}

// The full determinism matrix: {prefilter on/off} × {warm-start on/off}
// × worker counts must all produce the same coreset, index for index and
// loss bit for bit.
func TestPrefilterWarmStartWorkerMatrix(t *testing.T) {
	pts := messyPoints(250, 3, 55)
	var ref *Coreset
	for _, noPf := range []bool{false, true} {
		for _, noWarm := range []bool{false, true} {
			for _, workers := range []int{1, 3} {
				cs, err := New(pts, WithSeed(7), WithWorkers(workers),
					WithPrefilter(!noPf), WithLPWarmStart(!noWarm))
				if err != nil {
					t.Fatal(err)
				}
				q, err := cs.Coreset(0.1, Auto)
				if err != nil {
					t.Fatalf("pf=%v warm=%v workers=%d: %v", !noPf, !noWarm, workers, err)
				}
				if ref == nil {
					ref = q
					continue
				}
				coresetsEqualBitwise(t, q, ref,
					fmt.Sprintf("pf=%v warm=%v workers=%d", !noPf, !noWarm, workers))
			}
		}
	}
}

// Cache isolation: the build cache keys on the prefilter flag, so a
// cached prefiltered result can never answer an unfiltered request (and
// vice versa), and the dual-search seeding ignores entries from the
// other regime.
func TestPrefilterCacheIsolation(t *testing.T) {
	pts := messyPoints(200, 3, 77)
	cs, err := New(pts, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Coreset(0.1, SCMC); err != nil {
		t.Fatal(err)
	}
	if n := cs.cache.len(); n != 1 {
		t.Fatalf("cache has %d entries, want 1", n)
	}
	cs.cache.forEach(func(k buildKey, q *Coreset) {
		if !k.pf {
			t.Fatalf("prefiltered build cached under pf=false key: %+v", k)
		}
	})
	// A poisoned entry from the other regime must be invisible both to
	// lookups and to the dual search's bracket seeding.
	wrong := &Coreset{Indices: []int{0}, Points: []Point{cs.Point(0)}, Eps: 0.2, Algorithm: SCMC}
	cs.cache.mu.Lock()
	cs.cache.storeLocked(buildKey{algo: SCMC, qeps: quantizeEps(0.2), pf: false}, wrong)
	cs.cache.mu.Unlock()
	q, err := cs.CoresetCtx(context.Background(), 0.2, SCMC)
	if err != nil {
		t.Fatal(err)
	}
	if q.Report.CacheHit {
		t.Fatal("pf=false cache entry served to a prefiltered caller")
	}
	lo, hi, seed := cs.cachedDualSeed(SCMC, 1)
	if seed != nil && len(seed.Indices) == 1 && seed.Eps == 0.2 {
		t.Fatal("cachedDualSeed picked up the other regime's entry")
	}
	_, _ = lo, hi
}

// An unfiltered Coreseter must not mark reports prefiltered, and its
// cache keys must carry pf=false.
func TestPrefilterOffKeying(t *testing.T) {
	pts := messyPoints(150, 2, 91)
	cs, err := New(pts, WithSeed(7), WithPrefilter(false))
	if err != nil {
		t.Fatal(err)
	}
	q, err := cs.Coreset(0.1, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if q.Report.Prefiltered {
		t.Fatal("unfiltered build reported Prefiltered")
	}
	cs.cache.forEach(func(k buildKey, _ *Coreset) {
		if k.pf {
			t.Fatalf("unfiltered build cached under pf=true key: %+v", k)
		}
	})
}
