package mincore_test

// TestWriteBenchSpeed regenerates the committed raw-speed snapshot
// (BENCH_speed.json). It is gated on MINCORE_BENCH_SPEED — set it to the
// output path — because a full run takes minutes; `make bench-speed` /
// scripts/bench_speed.sh is the supported entry point.
//
// It measures the three layers of the speed work on the ξ≈260 bench
// instance (n=5000, d=5, seed 7):
//
//   - cold dominance-graph build: the pooled, warm-started edge-LP loop
//     against the baseline that solves every pair cold from a fresh
//     problem (ns/op and allocs/op, min-of-3 against 1-CPU scheduler
//     noise) — the committed speedup and allocation-diet ratios;
//   - cold certified auto build end to end (New + Coreset), prefilter
//     on vs off;
//   - the prefilter ratio n/ξ — how much smaller the work instance is.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"mincore"
	"mincore/internal/core"
	"mincore/internal/data"
)

func TestWriteBenchSpeed(t *testing.T) {
	out := os.Getenv("MINCORE_BENCH_SPEED")
	if out == "" {
		t.Skip("set MINCORE_BENCH_SPEED=<path> to write the speed snapshot")
	}

	const n, d, seed = 5000, 5, 7
	ds := data.Normal(n, d, seed)
	inst, err := core.NewInstance(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	inst.Workers = 1
	ipdg := inst.BuildIPDG(0, 1)
	xi := inst.Xi()

	entries := map[string]benchEntry{}

	// Cold DG build, baseline vs pooled+warm-started, sequential so the
	// comparison is pure per-LP cost. Timings are min-of-3; the alloc
	// counts are exact per run.
	base := minNs(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inst.BuildDominanceGraphBaseline(ipdg); err != nil {
				b.Fatal(err)
			}
		}
	})
	fast := minNs(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inst.BuildDominanceGraph(ipdg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The warm-start share of the win, isolated: pooled buffers but every
	// edge LP solved cold.
	inst.DisableLPWarmStart = true
	fastNoWarm := minNs(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inst.BuildDominanceGraph(ipdg); err != nil {
				b.Fatal(err)
			}
		}
	})
	inst.DisableLPWarmStart = false
	entries["dg_build_cold/baseline"] = toEntry(base)
	entries["dg_build_cold/pooled_warm"] = toEntry(fast)
	entries["dg_build_cold/pooled_no_warm"] = toEntry(fastNoWarm)

	dgSpeedup := float64(base.NsPerOp()) / float64(fast.NsPerOp())
	allocRatio := float64(base.AllocsPerOp()) / float64(fast.AllocsPerOp())
	if dgSpeedup < 5 {
		t.Errorf("cold DG-build speedup %.2fx is below the 5x floor (baseline %d ns/op, new %d ns/op)",
			dgSpeedup, base.NsPerOp(), fast.NsPerOp())
	}
	if allocRatio < 5 {
		t.Errorf("DG-build allocation ratio %.2fx is below the 5x floor (baseline %d allocs/op, new %d allocs/op)",
			allocRatio, base.AllocsPerOp(), fast.AllocsPerOp())
	}

	// Cold certified auto build end to end: a fresh Coreseter every
	// iteration, so preprocessing, the DG, certification, and repair all
	// run cold. Prefilter on vs off isolates the work-instance win.
	pts := make([]mincore.Point, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = mincore.Point(p)
	}
	coldBuild := func(pf bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs, err := mincore.New(pts, mincore.WithSeed(1), mincore.WithWorkers(1),
					mincore.WithPrefilter(pf))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cs.Coreset(0.1, mincore.Auto); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	autoOn := minNs(3, coldBuild(true))
	autoOff := minNs(3, coldBuild(false))
	entries["coreset_auto_cold/prefilter_on"] = toEntry(autoOn)
	entries["coreset_auto_cold/prefilter_off"] = toEntry(autoOff)

	snapshot := map[string]any{
		"go":         runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"workload":   map[string]any{"n": n, "d": d, "dataset": "normal", "seed": seed, "xi": xi},
		"benchmarks": entries,
		"dg_build": map[string]any{
			"speedup":     dgSpeedup,
			"alloc_ratio": allocRatio,
			"note":        "baseline (cold per-pair LPs) vs pooled+warm, workers=1, min-of-3 ns/op",
		},
		"auto_build": map[string]any{
			"prefilter_speedup": float64(autoOff.NsPerOp()) / float64(autoOn.NsPerOp()),
			"note":              "cold certified auto build, prefilter off vs on, min-of-3 ns/op",
		},
		"prefilter": map[string]any{
			"n": n, "xi": xi,
			"ratio": float64(n) / float64(xi),
			"note":  "work-instance shrink factor n/xi on the bench instance",
		},
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (DG speedup %.2fx, alloc ratio %.2fx, prefilter %d -> %d)",
		out, dgSpeedup, allocRatio, n, xi)
}
