package mincore_test

// TestWriteBenchJSON regenerates the committed benchmark snapshot
// (BENCH_observability.json). It is gated on MINCORE_BENCH_JSON — set it
// to the output path — because a full run takes minutes; `make
// bench-json` / scripts/bench_json.sh is the supported entry point.
//
// Each entry records ns/op, B/op and allocs/op from an in-process
// testing.Benchmark run; running in-process (instead of parsing `go test
// -bench` output) keeps the metric registry reachable, so the snapshot
// also embeds the post-run counter values — a coarse regression tripwire
// for the instrumentation itself (e.g. LP solves per DG build).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mincore"
	"mincore/internal/core"
	"mincore/internal/data"
	"mincore/internal/obs"
)

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

func toEntry(r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}

// minNs runs f `runs` times and keeps the fastest — the standard guard
// against scheduler noise on the 1-CPU CI container.
func minNs(runs int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < runs; i++ {
		r := testing.Benchmark(f)
		if r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("MINCORE_BENCH_JSON")
	if out == "" {
		t.Skip("set MINCORE_BENCH_JSON=<path> to write the benchmark snapshot")
	}

	obs.Enable() // collect the full metric inventory alongside the timings
	ds := data.Normal(2000, 4, 7)
	pts := make([]mincore.Point, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = mincore.Point(p)
	}

	entries := map[string]benchEntry{}

	// Dominance-graph build (the ξ² LP loop), sequential and 2-way. The
	// public Coreseter caches the graph, so this times the internal build
	// directly — every iteration pays the full loop.
	inst, err := core.NewInstance(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	ipdg := inst.BuildIPDG(0, 1)
	for _, w := range []int{1, 2} {
		inst.Workers = w
		entries[fmt.Sprintf("dg_build/workers=%d", w)] = toEntry(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inst.BuildDominanceGraph(ipdg); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	inst.Workers = 0

	// Certified end-to-end build (auto algorithm selection). A fresh
	// Coreseter per iteration keeps the internal DG cache cold, so this
	// times preprocessing + build + certification every op.
	entries["coreset_auto/eps=0.1"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			csAuto, err := mincore.New(pts, mincore.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := csAuto.Coreset(0.1, mincore.Auto); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Streaming hot paths.
	ss := mincore.NewStreamSummary(4, 0.1, 0.25, 7)
	entries["stream_feed"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ss.Feed(pts[i%len(pts)]); err != nil {
				b.Fatal(err)
			}
		}
	}))
	sketch := ss.Coreset()
	entries["stream_coreset_build"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scs, err := mincore.New(sketch, mincore.WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := scs.Coreset(0.15, mincore.Auto); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Observability tax on the DG hot loop: disabled vs enabled, min of 3
	// runs each. The acceptance bar is < 2%, but single-core noise can
	// exceed that on any one run, so the committed number is min-of-3 and
	// the hard assertion here is only a generous sanity bound.
	inst.Workers = 1
	dgOnce := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inst.BuildDominanceGraph(ipdg); err != nil {
				b.Fatal(err)
			}
		}
	}
	wasOn := obs.On()
	obs.Disable()
	off := minNs(3, dgOnce)
	obs.Enable()
	on := minNs(3, dgOnce)
	if !wasOn {
		obs.Disable()
	}
	entries["dg_build_obs/off"] = toEntry(off)
	entries["dg_build_obs/on"] = toEntry(on)
	overheadPct := 100 * (float64(on.NsPerOp()) - float64(off.NsPerOp())) / float64(off.NsPerOp())
	if overheadPct > 25 {
		t.Errorf("observability overhead %.1f%% is far over budget (want < 2%% nominal)", overheadPct)
	}

	// Request-tracing tax on the served-build path: the traced arm does
	// everything the mcserve middleware adds per request — trace mint,
	// context plumbing, the span tree, the trace-store admission —
	// around an otherwise identical uncached build. Budget is < 2%
	// nominal; as with the DG gate, the hard assertion is a generous
	// noise-tolerant bound and the committed number is min-of-3.
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 64})
	svc, err := mincore.NewIngestService(mincore.ServeOptions{
		Dim: 4, Eps: 0.1, Seed: 7, CheckpointInterval: -1, BuildCache: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Kill()
	if err := svc.Feed(pts[:500]...); err != nil {
		t.Fatal(err)
	}
	for {
		ss, err := svc.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if ss.N() == 500 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	traceOff := minNs(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Coreset(context.Background(), 0.2, mincore.Auto); err != nil {
				b.Fatal(err)
			}
		}
	})
	traceOn := minNs(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := obs.StartRequest("GET /v1/tenants/{id}/coreset", "")
			ctx := obs.WithRequest(context.Background(), rt)
			if _, err := svc.Coreset(ctx, 0.2, mincore.Auto); err != nil {
				b.Fatal(err)
			}
			rt.Root.End()
			store.Add(&obs.TraceRecord{
				ID: rt.ID, Tenant: "bench", Route: rt.Root.Name, Method: "GET", Status: 200,
				Start: rt.Root.Start, Duration: rt.Root.Duration,
				Anomalies: rt.Anomalies(), Trace: &obs.Trace{Root: rt.Root},
			})
		}
	})
	entries["serve_trace/off"] = toEntry(traceOff)
	entries["serve_trace/on"] = toEntry(traceOn)
	tracePct := 100 * (float64(traceOn.NsPerOp()) - float64(traceOff.NsPerOp())) / float64(traceOff.NsPerOp())
	if tracePct > 25 {
		t.Errorf("request-tracing overhead %.1f%% is far over budget (want < 2%% nominal)", tracePct)
	}

	snapshot := map[string]any{
		"go":             runtime.Version(),
		"goos":           runtime.GOOS,
		"goarch":         runtime.GOARCH,
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"workload":       map[string]any{"n": len(pts), "d": 4, "dataset": "normal", "seed": 7},
		"benchmarks":     entries,
		"obs_overhead":   map[string]any{"pct": overheadPct, "note": "min-of-3 ns/op, DG build, workers=1"},
		"trace_overhead": map[string]any{"pct": tracePct, "note": "min-of-3 ns/op, served uncached build, traced vs untraced"},
		"metrics":        obs.Default.Flatten(),
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (obs overhead %.2f%%)", out, overheadPct)
}
