package mincore

import (
	"fmt"
	"io"
	"math"

	"mincore/internal/geom"
	"mincore/internal/snapshot"
	"mincore/internal/stream"
)

// Typed streaming errors, re-exported for errors.Is checks against the
// public package alone.
var (
	// ErrIncompatibleSummaries is returned by StreamSummary.Merge for
	// summaries built with different parameters (dimension, direction
	// count, or seed).
	ErrIncompatibleSummaries = stream.ErrIncompatible
	// ErrBadMerge is returned by StreamSummary.Merge for a structurally
	// invalid merge: a nil summary or a summary merged into itself.
	ErrBadMerge = stream.ErrBadMerge
	// ErrBadSnapshot is returned by ReadStreamSummary (and the ingest
	// service's recovery path) for a snapshot that cannot be decoded:
	// wrong magic, unsupported version, truncated or torn payload, CRC
	// mismatch, or a structurally invalid summary state.
	ErrBadSnapshot = snapshot.ErrBadSnapshot
)

// StreamSummary is a one-pass, mergeable coreset summary for maxima
// representation: feed points in any order with Add (each point is seen
// once, O(m·d) work, O(m) memory for m directions), merge summaries of
// substreams with Merge, and read the coreset with Coreset.
//
// Unlike the batch algorithms, the summary cannot pre-normalize the
// stream, so the ε guarantee is relative to the stream's own fatness: on
// an α-fat stream, NewStreamSummary(d, eps, alpha, seed) sizes its
// direction set so the coreset loss is at most ≈ eps. For raw streams of
// unknown shape, treat the result as a directional-maxima sketch and
// validate downstream.
type StreamSummary struct {
	s *stream.Summary
}

// NewStreamSummary creates a summary for d-dimensional points targeting
// loss eps on streams of fatness ≥ alpha (alpha ≤ 0 assumes 0.25).
func NewStreamSummary(d int, eps, alpha float64, seed int64) *StreamSummary {
	if alpha <= 0 {
		alpha = 0.25
	}
	m := stream.SuggestDirections(eps, alpha, d)
	return &StreamSummary{s: stream.NewSummary(m, d, seed)}
}

// Feed validates and consumes one stream point. A NaN or infinite
// coordinate, or a point of the wrong dimension, is rejected with
// ErrInvalidPoint and leaves the summary untouched — the validation New
// applies to batch input, applied at ingest time.
func (ss *StreamSummary) Feed(p Point) error {
	if len(p) != ss.s.Dim() {
		return fmt.Errorf("%w: point has dimension %d, summary dimension %d", ErrInvalidPoint, len(p), ss.s.Dim())
	}
	for j, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: coordinate %d is %v", ErrInvalidPoint, j, v)
		}
	}
	return ss.s.Feed(geom.Vector(p))
}

// Add consumes one pre-validated stream point; invalid input panics
// (the historical contract). Use Feed to reject bad points gracefully.
func (ss *StreamSummary) Add(p Point) { ss.s.Add(geom.Vector(p)) }

// N returns the number of points consumed.
func (ss *StreamSummary) N() int { return ss.s.N() }

// Size returns the current coreset size.
func (ss *StreamSummary) Size() int { return ss.s.Size() }

// Coreset returns the current coreset points.
func (ss *StreamSummary) Coreset() []Point {
	q := ss.s.Coreset()
	out := make([]Point, len(q))
	for i, p := range q {
		out[i] = Point(p)
	}
	return out
}

// Omega returns the summary's maximum inner product for direction u.
func (ss *StreamSummary) Omega(u Point) float64 { return ss.s.Omega(geom.Vector(u)) }

// Merge folds another summary (same d, eps, alpha, seed parameters) into
// this one; the result is exactly the summary of the concatenated
// streams. Merging a nil summary or a summary into itself returns
// ErrBadMerge; parameter mismatch returns ErrIncompatibleSummaries.
func (ss *StreamSummary) Merge(other *StreamSummary) error {
	if other == nil || other.s == nil {
		return fmt.Errorf("%w: nil summary", ErrBadMerge)
	}
	if other == ss {
		return fmt.Errorf("%w: summary merged into itself", ErrBadMerge)
	}
	return ss.s.Merge(other.s)
}

// WriteSnapshot serializes the summary to w in the versioned snapshot
// format (magic, format version, parameter header, champion payload,
// CRC-32 trailer). The encoding is bitwise exact: ReadStreamSummary
// restores a summary with identical champions that merges with any live
// summary of the same parameters. For crash-safe on-disk checkpointing
// with generation fallback, use the ingest service instead.
func (ss *StreamSummary) WriteSnapshot(w io.Writer) error {
	return snapshot.Encode(w, ss.s, snapshot.Meta{})
}

// ReadStreamSummary restores a summary serialized by WriteSnapshot.
// Malformed input of any kind returns an error wrapping ErrBadSnapshot;
// it never panics.
func ReadStreamSummary(r io.Reader) (*StreamSummary, error) {
	s, _, err := snapshot.Decode(r)
	if err != nil {
		return nil, err
	}
	return &StreamSummary{s: s}, nil
}
