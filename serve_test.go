package mincore

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"mincore/internal/faultinject"
)

// servePoints generates a deterministic fat 2D ring-ish stream.
func servePoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		th := rng.Float64() * 2 * math.Pi
		r := 0.5 + 0.5*rng.Float64()
		pts[i] = Point{r * math.Cos(th), r * math.Sin(th)}
	}
	return pts
}

func newTestService(t *testing.T, opts ServeOptions) *IngestService {
	t.Helper()
	if opts.Dim == 0 {
		opts.Dim = 2
	}
	if opts.CheckpointInterval == 0 {
		opts.CheckpointInterval = -1 // manual checkpoints unless a test opts in
	}
	svc, err := NewIngestService(opts)
	if err != nil {
		t.Fatalf("NewIngestService: %v", err)
	}
	return svc
}

// drain waits until every fed point has been applied to a shard.
func drain(t *testing.T, svc *IngestService, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Ingested < want {
		if time.Now().After(deadline) {
			t.Fatalf("ingest stalled: %d/%d points applied", svc.Stats().Ingested, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeIngestAndCoreset(t *testing.T) {
	svc := newTestService(t, ServeOptions{IngestWorkers: 3, Seed: 5})
	defer svc.Kill()

	pts := servePoints(2000, 9)
	for i := 0; i < len(pts); i += 100 {
		if err := svc.Feed(pts[i : i+100]...); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	drain(t, svc, 2000)

	q, err := svc.Coreset(context.Background(), 0.1, Auto)
	if err != nil {
		t.Fatalf("Coreset: %v", err)
	}
	if q.Size() == 0 || !q.Report.Certified {
		t.Fatalf("served coreset size=%d certified=%v", q.Size(), q.Report.Certified)
	}
	meta := q.Report.Checkpoint
	if meta == nil {
		t.Fatal("served report has no checkpoint metadata")
	}
	if meta.StreamN != 2000 || meta.Generation != 0 || meta.RestoredN != 0 {
		t.Fatalf("checkpoint meta = %+v, want StreamN=2000 Generation=0 RestoredN=0", meta)
	}
}

func TestServeFeedValidation(t *testing.T) {
	svc := newTestService(t, ServeOptions{})
	defer svc.Kill()

	for _, bad := range []Point{
		{math.NaN(), 0}, {0, math.Inf(1)}, {1, 2, 3}, {1},
	} {
		if err := svc.Feed(bad); !errors.Is(err, ErrInvalidPoint) {
			t.Fatalf("Feed(%v): err = %v, want ErrInvalidPoint", bad, err)
		}
	}
	// A batch with one bad point is rejected whole.
	if err := svc.Feed(Point{0, 0}, Point{math.NaN(), 1}); !errors.Is(err, ErrInvalidPoint) {
		t.Fatalf("mixed batch: err = %v, want ErrInvalidPoint", err)
	}
	if got := svc.Stats().Ingested; got != 0 {
		t.Fatalf("invalid input was ingested: %d points", got)
	}
}

func TestServeWorkerPanicIsolation(t *testing.T) {
	svc := newTestService(t, ServeOptions{IngestWorkers: 2})
	defer svc.Kill()
	svc.panicHook = func(p []float64) {
		if p[0] == 666 {
			panic("poison point")
		}
	}

	if err := svc.Feed(Point{1, 0}, Point{666, 0}, Point{0, 1}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.WorkerPanics > 0 && st.LastError != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker panic never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	st := svc.Stats()
	if !errors.Is(st.LastError, ErrWorkerPanic) {
		t.Fatalf("LastError = %v, want ErrWorkerPanic", st.LastError)
	}
	var pe *WorkerPanicError
	if !errors.As(st.LastError, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("LastError %T lacks panic detail", st.LastError)
	}

	// Degraded but alive: the service keeps ingesting and serving.
	svc.panicHook = nil
	pre := svc.Stats().Ingested
	if err := svc.Feed(servePoints(500, 4)...); err != nil {
		t.Fatalf("Feed after panic: %v", err)
	}
	drain(t, svc, pre+500)
	if _, err := svc.Coreset(context.Background(), 0.2, Auto); err != nil {
		t.Fatalf("Coreset after panic: %v", err)
	}
}

func TestServeAdmissionControl(t *testing.T) {
	svc := newTestService(t, ServeOptions{MaxInflightBuilds: 1})
	defer svc.Kill()
	if err := svc.Feed(servePoints(200, 3)...); err != nil {
		t.Fatal(err)
	}
	drain(t, svc, 200)

	// Occupy the only build slot, then demand another build.
	svc.buildSem <- struct{}{}
	_, err := svc.Coreset(context.Background(), 0.1, Auto)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated builds: err = %v, want ErrOverloaded", err)
	}
	if svc.Stats().BuildsShed != 1 {
		t.Fatalf("BuildsShed = %d, want 1", svc.Stats().BuildsShed)
	}
	<-svc.buildSem
	if _, err := svc.Coreset(context.Background(), 0.1, Auto); err != nil {
		t.Fatalf("Coreset after slot freed: %v", err)
	}
}

func TestServeQueueBackpressure(t *testing.T) {
	svc := newTestService(t, ServeOptions{IngestWorkers: 1, QueueSize: 2})
	block := make(chan struct{})
	// Cleanups run LIFO: unblock the worker before Kill waits for it.
	t.Cleanup(svc.Kill)
	t.Cleanup(func() { close(block) })
	svc.panicHook = func(p []float64) { <-block }

	// The first dequeued batch parks the worker in the hook; subsequent
	// feeds fill the bounded queue until the service sheds.
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		err = svc.Feed(Point{float64(i), 0})
		if errors.Is(err, ErrOverloaded) {
			break
		}
		if err != nil {
			t.Fatalf("Feed #%d: %v", i, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	if svc.Stats().Rejected == 0 {
		t.Fatal("Rejected counter not incremented")
	}
}

func TestServeDeadlinePropagation(t *testing.T) {
	svc := newTestService(t, ServeOptions{})
	defer svc.Kill()
	if err := svc.Feed(servePoints(300, 8)...); err != nil {
		t.Fatal(err)
	}
	drain(t, svc, 300)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Coreset(ctx, 0.05, Auto); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: err = %v, want context.Canceled", err)
	}
	ctx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := svc.Coreset(ctx, 0.05, Auto); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestServeCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.snap")
	pts := servePoints(1500, 17)

	svc := newTestService(t, ServeOptions{SnapshotPath: path, Seed: 2, IngestWorkers: 2})
	if err := svc.Feed(pts[:1000]...); err != nil {
		t.Fatal(err)
	}
	drain(t, svc, 1000)
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := svc.Close(); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("second Close: err = %v, want ErrServiceClosed", err)
	}
	if err := svc.Feed(Point{0, 0}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("Feed after Close: err = %v, want ErrServiceClosed", err)
	}

	// Restart: recover, then replay the tail from the reported offset.
	svc2 := newTestService(t, ServeOptions{SnapshotPath: path, Seed: 2, IngestWorkers: 2})
	defer svc2.Kill()
	if got := svc2.RestoredPoints(); got != 1000 {
		t.Fatalf("RestoredPoints = %d, want 1000", got)
	}
	if err := svc2.Feed(pts[svc2.RestoredPoints():]...); err != nil {
		t.Fatal(err)
	}
	drain(t, svc2, 500)
	if got := svc2.StreamN(); got != 1500 {
		t.Fatalf("StreamN = %d, want 1500", got)
	}

	// The recovered+replayed summary must match one built in a single
	// pass over the whole stream.
	want := NewStreamSummary(2, 0.05, 0.25, 2)
	for _, p := range pts {
		want.Add(p)
	}
	got, err := svc2.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.Size() != want.Size() {
		t.Fatalf("recovered summary n=%d size=%d, single-pass n=%d size=%d",
			got.N(), got.Size(), want.N(), want.Size())
	}
	q, err := svc2.Coreset(context.Background(), 0.1, Auto)
	if err != nil {
		t.Fatalf("Coreset after restore: %v", err)
	}
	if q.Report.Checkpoint.RestoredN != 1000 || q.Report.Checkpoint.Generation == 0 {
		t.Fatalf("checkpoint meta after restore = %+v", q.Report.Checkpoint)
	}
}

func TestServeSnapshotIncompatible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.snap")
	svc := newTestService(t, ServeOptions{Dim: 3, Seed: 1, SnapshotPath: path})
	if err := svc.Feed(Point{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	drain(t, svc, 1)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Different seed → different direction net → must be refused.
	_, err := NewIngestService(ServeOptions{Dim: 3, Seed: 99, SnapshotPath: path,
		CheckpointInterval: -1})
	if !errors.Is(err, ErrSnapshotIncompatible) {
		t.Fatalf("mismatched snapshot: err = %v, want ErrSnapshotIncompatible", err)
	}
}

func TestServeCheckpointBackoffOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, ServeOptions{SnapshotPath: filepath.Join(dir, "s.snap")})
	defer svc.Kill()
	if err := svc.Feed(servePoints(50, 1)...); err != nil {
		t.Fatal(err)
	}
	drain(t, svc, 50)

	faultinject.Enable(faultinject.Config{Seed: 1, Rate: 1,
		Sites: []faultinject.Site{faultinject.SiteSnapshotFsync}})
	for i := 0; i < 3; i++ {
		if err := svc.Checkpoint(); err == nil {
			t.Fatal("Checkpoint succeeded under injected fsync fault")
		}
	}
	if got := svc.Stats().CheckpointFailures; got != 3 {
		t.Fatalf("CheckpointFailures = %d, want 3", got)
	}
	faultinject.Disable()

	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after fault cleared: %v", err)
	}
	st := svc.Stats()
	if st.CheckpointFailures != 0 || st.CheckpointGeneration != 1 || st.CheckpointPoints != 50 {
		t.Fatalf("post-recovery stats = %+v", st)
	}
}

func TestServePeriodicCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, ServeOptions{
		SnapshotPath:       filepath.Join(dir, "s.snap"),
		CheckpointInterval: 5 * time.Millisecond,
	})
	defer svc.Kill()
	if err := svc.Feed(servePoints(20, 2)...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().CheckpointGeneration == 0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint loop never wrote a generation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeRequiresDim(t *testing.T) {
	if _, err := NewIngestService(ServeOptions{}); err == nil {
		t.Fatal("NewIngestService without Dim succeeded")
	}
}

// TestServeQuotaNotChargedOnShed: quota tokens are only consumed for
// batches actually admitted to the queue — a batch shed with
// ErrOverloaded refunds its tokens, so an overloaded service reports
// ErrOverloaded (back off and retry) rather than draining the bucket
// and flipping to ErrQuotaExceeded for points that were never ingested.
func TestServeQuotaNotChargedOnShed(t *testing.T) {
	frozen := time.Unix(1000, 0)
	svc := newTestService(t, ServeOptions{
		IngestWorkers:     1,
		QueueSize:         1,
		QuotaPointsPerSec: 1,
		QuotaBurst:        8,
		clock:             func() time.Time { return frozen }, // no refill
	})
	block := make(chan struct{})
	t.Cleanup(svc.Kill)
	t.Cleanup(func() { close(block) })
	svc.panicHook = func(p []float64) { <-block }

	// Park the worker on the first batch and fill the bounded queue.
	accepted := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := svc.Feed(Point{float64(accepted), 0})
		if errors.Is(err, ErrOverloaded) {
			break
		}
		if err != nil {
			t.Fatalf("Feed #%d: %v", accepted, err)
		}
		accepted++
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}

	tokens := func() float64 {
		svc.quota.mu.Lock()
		defer svc.quota.mu.Unlock()
		return svc.quota.tokens
	}
	want := float64(8 - accepted)
	if got := tokens(); got != want {
		t.Fatalf("tokens after filling queue = %v, want %v (accepted %d)", got, want, accepted)
	}
	// Every further shed must report ErrOverloaded — never
	// ErrQuotaExceeded — and leave the bucket untouched.
	for i := 0; i < 3; i++ {
		if err := svc.Feed(Point{0, 0}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shed Feed #%d = %v, want ErrOverloaded", i, err)
		}
	}
	if got := tokens(); got != want {
		t.Errorf("tokens drained by shed batches: %v, want %v", got, want)
	}
	if st := svc.Stats(); st.QuotaShed != 0 {
		t.Errorf("QuotaShed = %d for overload sheds, want 0", st.QuotaShed)
	}
}
