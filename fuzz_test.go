package mincore_test

// Native Go fuzz target for the public build pipeline: arbitrary raw
// bytes become points (including NaN, ±Inf, subnormals, and wildly
// anisotropic magnitudes), and the contract under test is the
// robustness one — New and Coreset never panic, and a nil error always
// comes with a certified loss within ε.

import (
	"encoding/binary"
	"math"
	"testing"

	"mincore"
)

// FuzzNewCoreset decodes the fuzzer's bytes into a point set and runs
// the full certified build. Run the stored corpus with `go test`; mine
// new inputs with `make fuzz`.
func FuzzNewCoreset(f *testing.F) {
	// Seed corpus: a tiny square, a degenerate line, a NaN carrier, and
	// an anisotropic set, at assorted ε and d.
	square := make([]byte, 0, 64)
	for _, v := range []float64{0, 0, 0, 1, 1, 0, 1, 1} {
		square = binary.LittleEndian.AppendUint64(square, math.Float64bits(v))
	}
	f.Add(square, uint16(100), uint8(1))
	line := make([]byte, 0, 48)
	for _, v := range []float64{0, 0, 1, 2, 2, 4} {
		line = binary.LittleEndian.AppendUint64(line, math.Float64bits(v))
	}
	f.Add(line, uint16(500), uint8(1))
	nan := binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))
	f.Add(append(append([]byte{}, square...), nan...), uint16(42), uint8(0))
	aniso := make([]byte, 0, 64)
	for _, v := range []float64{1e12, 1e-9, -1e12, 2e-9, 5e11, -1e-9, -7e11, 3e-9} {
		aniso = binary.LittleEndian.AppendUint64(aniso, math.Float64bits(v))
	}
	f.Add(aniso, uint16(900), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, epsRaw uint16, dRaw uint8) {
		d := 1 + int(dRaw)%3                          // 1..3
		eps := (float64(epsRaw%999) + 0.5) / 1000.0   // (0,1)
		coords := len(data) / 8
		n := coords / d
		if n < 1 {
			t.Skip("not enough bytes for a point")
		}
		if n > 48 {
			n = 48 // bound the LP work per input
		}
		pts := make([]mincore.Point, n)
		for i := range pts {
			p := make(mincore.Point, d)
			for j := range p {
				off := (i*d + j) * 8
				p[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			}
			pts[i] = p
		}

		cs, err := mincore.New(pts, mincore.WithSeed(1), mincore.WithWorkers(1))
		if err != nil {
			return // typed rejection (NaN/Inf, degenerate shape) is fine
		}
		q, err := cs.Coreset(eps, mincore.Auto)
		if err != nil {
			return // typed failure is fine; a panic would have crashed
		}
		if q.Size() == 0 || q.Size() != len(q.Points) {
			t.Fatalf("malformed coreset: size %d, %d points", q.Size(), len(q.Points))
		}
		if q.Report == nil || !q.Report.Certified {
			t.Fatalf("nil error without certification: %+v", q.Report)
		}
		if got := cs.Loss(q.Indices); got > eps+1e-6 {
			t.Fatalf("certified coreset has loss %v > ε = %v", got, eps)
		}
	})
}
