// Command datagen emits the evaluation datasets as CSV: the synthetic
// NORMAL/UNIFORM generators and the Table 1 real-dataset stand-ins.
//
// Usage:
//
//	datagen -data normal-6d -n 100000 > normal6.csv
//	datagen -data colors -out colors.csv
//
// Diagnostics go to stderr as structured logs (-log-level/-log-format),
// so stdout stays pure CSV for piping.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"

	"mincore/internal/data"
	"mincore/internal/obs"
)

func main() {
	name := flag.String("data", "", "dataset name (foursquare-nyc, roadnetwork, climate, airquality, colors, normal-<d>d, uniform-<d>d)")
	n := flag.Int("n", 0, "number of points (0 = dataset default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}
	log := obs.Component(logger, "datagen")

	if *name == "" {
		log.Error("-data is required")
		os.Exit(1)
	}
	ds, err := data.ByName(*name, *n, *seed)
	if err != nil {
		log.Error("dataset generation failed", slog.Any("error", err))
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Error("create output file", slog.Any("error", err))
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, p := range ds.Points {
		for i, v := range p {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	log.Info("dataset written",
		slog.String("dataset", ds.Name),
		slog.Int("n", len(ds.Points)),
		slog.Int("d", ds.D),
		slog.String("out", *out))
}
