// Command datagen emits the evaluation datasets as CSV: the synthetic
// NORMAL/UNIFORM generators and the Table 1 real-dataset stand-ins.
//
// Usage:
//
//	datagen -data normal-6d -n 100000 > normal6.csv
//	datagen -data colors -out colors.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mincore/internal/data"
)

func main() {
	name := flag.String("data", "", "dataset name (foursquare-nyc, roadnetwork, climate, airquality, colors, normal-<d>d, uniform-<d>d)")
	n := flag.Int("n", 0, "number of points (0 = dataset default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -data is required")
		os.Exit(1)
	}
	ds, err := data.ByName(*name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, p := range ds.Points {
		for i, v := range p {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s (n=%d, d=%d)\n", ds.Name, len(ds.Points), ds.D)
}
