// Command mccoreset computes a minimum ε-coreset of a dataset and prints
// a summary (and optionally the coreset itself as CSV).
//
// Usage:
//
//	mccoreset -data normal-2d -n 10000 -eps 0.05 -algo optmc
//	mccoreset -data airquality -eps 0.1 -algo dsmc -out coreset.csv
//	mccoreset -in points.csv -eps 0.05 -algo auto
//	mccoreset -data normal-4d -sweep 0.02,0.05,0.1 -algo dsmc
//
// Built-in dataset names are those of internal/data (Table 1 stand-ins
// and normal-<d>d / uniform-<d>d); -in reads a headerless CSV of floats
// instead.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mincore"
	"mincore/internal/data"
	"mincore/internal/obs"
)

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func main() {
	dataset := flag.String("data", "", "built-in dataset name (e.g. normal-2d, airquality)")
	in := flag.String("in", "", "CSV file of points (alternative to -data)")
	n := flag.Int("n", 0, "number of points to generate (0 = dataset default)")
	eps := flag.Float64("eps", 0.1, "error parameter ε ∈ (0,1)")
	algo := flag.String("algo", "auto", "algorithm: auto, optmc, dsmc, scmc, ann")
	size := flag.Int("size", 0, "solve the dual problem: best coreset of at most this size (overrides -eps)")
	sweep := flag.String("sweep", "", "comma-separated ε ladder to build in one batch (overrides -eps and -size), e.g. 0.02,0.05,0.1")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel hot paths (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit)")
	certify := flag.Bool("certify", true, "verify the result against ε and repair (retry, fall back) on failure")
	maxRetries := flag.Int("max-retries", 0, "re-seeded retries per repair step (0 = default of 1, negative = none)")
	trace := flag.Bool("trace", false, "print the phase-span tree of the build (durations per phase)")
	out := flag.String("out", "", "write coreset points to this CSV file")
	flag.Parse()

	obs.Enable() // collect solver metrics; the trace is always recorded

	pts, name, err := loadPoints(*dataset, *in, *n, *seed)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	cs, err := mincore.New(pts,
		mincore.WithSeed(*seed), mincore.WithWorkers(*workers),
		mincore.WithCertification(*certify), mincore.WithMaxRetries(*maxRetries))
	if err != nil {
		fatal(err)
	}
	prepTime := time.Since(start)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *sweep != "" {
		runSweep(ctx, cs, name, *sweep, mincore.Algorithm(*algo), prepTime)
		return
	}
	start = time.Now()
	var q *mincore.Coreset
	if *size > 0 {
		q, err = cs.FixedSizeCtx(ctx, *size, mincore.Algorithm(*algo))
	} else {
		q, err = cs.CoresetCtx(ctx, *eps, mincore.Algorithm(*algo))
	}
	if err != nil {
		var ue *mincore.UncertifiedError
		if errors.As(err, &ue) && ue.Coreset != nil {
			fmt.Fprintf(os.Stderr, "mccoreset: %v\n", err)
			fmt.Fprintf(os.Stderr, "mccoreset: best-effort coreset: %d points, measured loss %.6f (target ε=%.4f)\n",
				ue.Coreset.Size(), ue.Coreset.Loss, *eps)
			if *trace && ue.Report != nil && ue.Report.Trace != nil {
				fmt.Fprintln(os.Stderr, "phase trace:")
				ue.Report.Trace.Write(os.Stderr)
			}
			os.Exit(1)
		}
		fatal(err)
	}
	solveTime := time.Since(start)

	fmt.Printf("dataset:        %s (n=%d, d=%d)\n", name, cs.N(), cs.Dim())
	fmt.Printf("extreme points: %d (α=%.3f)\n", cs.NumExtreme(), cs.Alpha())
	fmt.Printf("algorithm:      %s\n", q.Algorithm)
	fmt.Printf("ε:              %.4f\n", q.Eps)
	fmt.Printf("coreset size:   %d (%.4f%% of data)\n", q.Size(), 100*float64(q.Size())/float64(cs.N()))
	fmt.Printf("measured loss:  %.6f\n", q.Loss)
	if rep := q.Report; rep != nil {
		status := "uncertified"
		if rep.Certified {
			status = "certified"
		}
		fmt.Printf("certification:  %s (loss %.6f ≤ ε, %d attempt(s), %d retr%s)\n",
			status, rep.CertifiedLoss, rep.Attempts, rep.Retries, plural(rep.Retries, "y", "ies"))
		if len(rep.Fallbacks) > 0 {
			fmt.Printf("repair steps:   %v\n", rep.Fallbacks)
		}
	}
	fmt.Printf("preprocessing:  %v\n", prepTime.Round(time.Millisecond))
	fmt.Printf("solve time:     %v\n", solveTime.Round(time.Millisecond))
	if *trace {
		if q.Report != nil && q.Report.Trace != nil {
			fmt.Println("phase trace:")
			q.Report.Trace.Write(os.Stdout)
		} else {
			fmt.Println("phase trace:   (none recorded)")
		}
	}

	if *out != "" {
		if err := writeCSV(*out, q.Points); err != nil {
			fatal(err)
		}
		fmt.Printf("coreset written to %s\n", *out)
	}
}

// runSweep drives the batched ε-ladder API: one CoresetSweep call builds
// every requested ε, sharing the dominance graph / SCMC substrate and
// the build cache across the ladder, and prints one row per ε.
func runSweep(ctx context.Context, cs *mincore.Coreseter, name, spec string, algo mincore.Algorithm, prepTime time.Duration) {
	var epsList []float64
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -sweep entry %q: %w", s, err))
		}
		epsList = append(epsList, v)
	}
	if len(epsList) == 0 {
		fatal(fmt.Errorf("-sweep needs at least one ε value"))
	}
	start := time.Now()
	results, err := cs.CoresetSweep(ctx, epsList, algo)
	sweepTime := time.Since(start)
	fmt.Printf("dataset:        %s (n=%d, d=%d)\n", name, cs.N(), cs.Dim())
	fmt.Printf("extreme points: %d (α=%.3f)\n", cs.NumExtreme(), cs.Alpha())
	fmt.Printf("sweep:          %d ε values, algo %s\n", len(epsList), algo)
	fmt.Printf("preprocessing:  %v\n", prepTime.Round(time.Millisecond))
	fmt.Printf("sweep time:     %v\n", sweepTime.Round(time.Millisecond))
	fmt.Printf("%10s %8s %10s %10s %8s %6s\n", "ε", "size", "loss", "algo", "attempts", "cache")
	for i, q := range results {
		if q == nil {
			fmt.Printf("%10.4f %8s %10s %10s %8s %6s\n", epsList[i], "-", "failed", "-", "-", "-")
			continue
		}
		attempts, cache := "-", "miss"
		if q.Report != nil {
			attempts = strconv.Itoa(q.Report.Attempts)
			if q.Report.CacheHit {
				cache = "hit"
			}
		}
		fmt.Printf("%10.4f %8d %10.6f %10s %8s %6s\n", epsList[i], q.Size(), q.Loss, q.Algorithm, attempts, cache)
	}
	if err != nil {
		fatal(err)
	}
}

func loadPoints(dataset, in string, n int, seed int64) ([]mincore.Point, string, error) {
	switch {
	case dataset != "" && in != "":
		return nil, "", fmt.Errorf("use either -data or -in, not both")
	case dataset != "":
		ds, err := data.ByName(dataset, n, seed)
		if err != nil {
			return nil, "", err
		}
		pts := make([]mincore.Point, len(ds.Points))
		for i, p := range ds.Points {
			pts[i] = mincore.Point(p)
		}
		return pts, ds.Name, nil
	case in != "":
		pts, err := readCSV(in)
		return pts, in, err
	default:
		return nil, "", fmt.Errorf("one of -data or -in is required")
	}
}

func readCSV(path string) ([]mincore.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	var pts []mincore.Point
	for {
		rec, err := r.Read()
		if err != nil {
			if len(pts) == 0 {
				return nil, fmt.Errorf("no rows in %s", path)
			}
			return pts, nil
		}
		p := make(mincore.Point, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%s row %d: %w", path, len(pts)+1, err)
			}
			p[i] = v
		}
		pts = append(pts, p)
	}
}

func writeCSV(path string, pts []mincore.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, p := range pts {
		rec := make([]string, len(p))
		for i, v := range p {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mccoreset:", err)
	os.Exit(1)
}
