// Command mcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the rows/series of the
// corresponding table or figure.
//
// Usage:
//
//	mcbench -exp table1            # Table 1 (dataset stats, DG time)
//	mcbench -exp fig4              # Figure 4 (2D, size/time vs ε)
//	mcbench -exp all               # everything, in paper order
//	mcbench -exp fig8 -full        # paper-scale sizes (n up to 10⁷)
//	mcbench -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The default profile scales datasets down to finish on a single core;
// see EXPERIMENTS.md for recorded paper-vs-measured comparisons.
// -cpuprofile and -memprofile write pprof files analyzable with
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mincore/internal/experiments"
	"mincore/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", fmt.Sprintf("experiment to run: one of %v or 'all'", experiments.Experiments()))
	full := flag.Bool("full", false, "run at the paper's dataset sizes (slow)")
	tiny := flag.Bool("tiny", false, "run at quarter scale (quick smoke of every figure)")
	seed := flag.Int64("seed", 1, "random seed for dataset generation and sampling")
	steps := flag.Int("eps-steps", 0, "trim ε sweeps to the largest k values (0 = full sweep)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	obs.Enable()
	os.Exit(run(*exp, *full, *tiny, *seed, *steps, *cpuprofile, *memprofile))
}

// run is main minus os.Exit, so the profile writers' defers always fire.
func run(exp string, full, tiny bool, seed int64, steps int, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	code := 0
	cfg := experiments.Config{Full: full, Tiny: tiny, Seed: seed, MaxEpsSteps: steps}
	if err := experiments.Run(exp, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		code = 1
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // materialize the retained heap before sampling
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
	}
	return code
}
