// Command mcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the rows/series of the
// corresponding table or figure.
//
// Usage:
//
//	mcbench -exp table1            # Table 1 (dataset stats, DG time)
//	mcbench -exp fig4              # Figure 4 (2D, size/time vs ε)
//	mcbench -exp all               # everything, in paper order
//	mcbench -exp fig8 -full        # paper-scale sizes (n up to 10⁷)
//
// The default profile scales datasets down to finish on a single core;
// see EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"mincore/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", fmt.Sprintf("experiment to run: one of %v or 'all'", experiments.Experiments()))
	full := flag.Bool("full", false, "run at the paper's dataset sizes (slow)")
	tiny := flag.Bool("tiny", false, "run at quarter scale (quick smoke of every figure)")
	seed := flag.Int64("seed", 1, "random seed for dataset generation and sampling")
	steps := flag.Int("eps-steps", 0, "trim ε sweeps to the largest k values (0 = full sweep)")
	flag.Parse()

	cfg := experiments.Config{Full: *full, Tiny: *tiny, Seed: *seed, MaxEpsSteps: *steps}
	if err := experiments.Run(*exp, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}
