package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mincore"
	"mincore/internal/obs"
)

// traceResponse mirrors the GET /v1/tenants/{id}/traces payload with
// the span tree kept generic, the way an operator's tooling would
// consume it.
type traceResponse struct {
	Tenant string `json:"tenant"`
	Count  int    `json:"count"`
	Traces []struct {
		ID        string          `json:"id"`
		Route     string          `json:"route"`
		Status    int             `json:"status"`
		Anomalies []string        `json:"anomalies"`
		Trace     json.RawMessage `json:"trace"`
	} `json:"traces"`
}

// spanNames flattens every span name in a serialized trace.
func spanNames(raw json.RawMessage) []string {
	var tr struct {
		Root json.RawMessage `json:"root"`
	}
	if json.Unmarshal(raw, &tr) != nil {
		return nil
	}
	var walk func(json.RawMessage) []string
	walk = func(node json.RawMessage) []string {
		var s struct {
			Name     string            `json:"name"`
			Children []json.RawMessage `json:"children"`
		}
		if json.Unmarshal(node, &s) != nil {
			return nil
		}
		out := []string{s.Name}
		for _, c := range s.Children {
			out = append(out, walk(c)...)
		}
		return out
	}
	return walk(tr.Root)
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func getTraces(t *testing.T, ts *httptest.Server, path string) traceResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	return tr
}

// TestTraceEndToEndHTTP is the acceptance walk of the tracing layer:
// one X-Request-Id survives from the front door through scheduler
// admission and the build span tree, and the finished trace is
// retrievable from the per-tenant store after the fact.
func TestTraceEndToEndHTTP(t *testing.T) {
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 16})
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7, MaxInflightBuilds: 2, TraceStore: store,
	})

	pts := make([][]float64, 0, 64)
	for i := 0; i < 64; i++ {
		pts = append(pts, []float64{float64(i%17) / 17, float64((i*7)%13) / 13})
	}
	body, _ := json.Marshal(map[string]any{"points": pts})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/tenants/default/ingest", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "ingest-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "ingest-e2e-1" {
		t.Fatalf("ingest echoed X-Request-Id %q", got)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/v1/tenants/default/coreset?eps=0.2", nil)
	req.Header.Set("X-Request-Id", "coreset-e2e-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("coreset: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coreset status %d", resp.StatusCode)
	}

	tr := getTraces(t, ts, "/v1/tenants/default/traces")
	byID := map[string]int{}
	for i, r := range tr.Traces {
		byID[r.ID] = i
	}
	ing, ok := byID["ingest-e2e-1"]
	if !ok {
		t.Fatalf("ingest trace not retained; got IDs %v", byID)
	}
	if got := tr.Traces[ing].Route; got != "POST /v1/tenants/{id}/ingest" {
		t.Errorf("ingest route = %q, want normalized {id} form", got)
	}
	if names := spanNames(tr.Traces[ing].Trace); !hasName(names, "ingest-admit") {
		t.Errorf("ingest trace spans = %v, want ingest-admit", names)
	}

	cor, ok := byID["coreset-e2e-1"]
	if !ok {
		t.Fatalf("coreset trace not retained; got IDs %v", byID)
	}
	names := spanNames(tr.Traces[cor].Trace)
	for _, want := range []string{"sched-wait", "grant-to-start", "build"} {
		if !hasName(names, want) {
			t.Errorf("coreset trace spans = %v, want %s", names, want)
		}
	}
}

// TestTraceAnomalyRetentionHTTP: a 5xx answer (deadline-killed build)
// is flagged as an anomaly, always retained, and visible through the
// anomalies-only view — that is the flight-recorder contract at the
// HTTP surface.
func TestTraceAnomalyRetentionHTTP(t *testing.T) {
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 4})
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 3, TraceStore: store,
	})
	feedPoints(t, ts, "/v1/tenants/default/ingest", [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.9, 0.5}})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/tenants/default/coreset?eps=0.2&timeout=1ns", nil)
	req.Header.Set("X-Request-Id", "doomed-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("coreset: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns build status = %d, want 504", resp.StatusCode)
	}

	tr := getTraces(t, ts, "/v1/tenants/default/traces?anomalies=1")
	found := false
	for _, r := range tr.Traces {
		if r.ID == "doomed-1" {
			found = true
			if r.Status != http.StatusGatewayTimeout {
				t.Errorf("anomaly status = %d", r.Status)
			}
			ok := false
			for _, a := range r.Anomalies {
				if a == "error" {
					ok = true
				}
			}
			if !ok {
				t.Errorf("anomalies = %v, want error", r.Anomalies)
			}
		}
	}
	if !found {
		t.Fatalf("doomed-1 not in anomaly ring: %+v", tr.Traces)
	}

	// A hostile request ID is discarded, not echoed.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/tenants/default/stats", nil)
	req.Header.Set("X-Request-Id", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("sanitized X-Request-Id = %q, want a minted hex ID", got)
	}
}

// TestTraceSlowThresholdHTTP: requests slower than the store threshold
// are promoted to the anomaly ring with the "slow" flag, carrying the
// full span tree for after-the-fact latency attribution.
func TestTraceSlowThresholdHTTP(t *testing.T) {
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 4, SlowThreshold: time.Nanosecond})
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 5, TraceStore: store,
	})
	feedPoints(t, ts, "/v1/tenants/default/ingest", [][]float64{{0.5, 0.5}})

	tr := getTraces(t, ts, "/v1/tenants/default/traces?anomalies=1")
	if tr.Count == 0 {
		t.Fatal("no slow-flagged traces with a 1ns threshold")
	}
	for _, r := range tr.Traces {
		ok := false
		for _, a := range r.Anomalies {
			if a == obs.AnomalySlow {
				ok = true
			}
		}
		if !ok {
			t.Errorf("trace %s anomalies = %v, want slow", r.ID, r.Anomalies)
		}
	}
}

// TestTraceEndpointsDisabled: -trace-retain 0 (nil store) turns the
// trace surface off cleanly — no X-Request-Id minting, 404 on the
// trace endpoints — while the request keeps being served.
func TestTraceEndpointsDisabled(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 9})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Errorf("tracing off but X-Request-Id = %q", got)
	}
	for _, path := range []string{"/v1/tenants/default/traces", "/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var env struct {
			Error struct{ Code string } `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != "tracing_disabled" {
			t.Errorf("GET %s = %d %q, want 404 tracing_disabled", path, resp.StatusCode, env.Error.Code)
		}
	}
}

// TestHTTPMetricsAndRuntimeGauges: the middleware's request counter
// and duration histogram land on /metrics with bounded route labels,
// the runtime health gauges are exposed and fresh, and the duration
// histogram's JSON exposition carries the latest trace ID as an
// exemplar.
func TestHTTPMetricsAndRuntimeGauges(t *testing.T) {
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 4})
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 11, TraceStore: store,
	})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/tenants/default/stats", nil)
	req.Header.Set("X-Request-Id", "metrics-exemplar-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	text := string(raw)
	for _, want := range []string{
		`mincore_http_requests_total{`,
		`route="GET /v1/tenants/{id}/stats"`,
		"mincore_http_request_duration_seconds",
		"mincore_runtime_goroutines",
		"mincore_runtime_heap_inuse_bytes",
		"mincore_runtime_gc_pause_last_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Exemplars stay off the text format — the strict scrape parser
	// must keep round-tripping.
	if strings.Contains(text, "metrics-exemplar-1") {
		t.Error("exemplar leaked into the Prometheus text exposition")
	}
	if _, err := obs.ParsePrometheus(strings.NewReader(text)); err != nil {
		t.Errorf("/metrics no longer parses: %v", err)
	}

	snap := obs.Default.Snapshot()
	fam, ok := snap["mincore_http_request_duration_seconds"]
	if !ok {
		t.Fatal("duration histogram not in JSON exposition")
	}
	found := false
	for _, s := range fam.Series {
		if s.Exemplar != nil && s.Exemplar.TraceID == "metrics-exemplar-1" {
			found = true
		}
	}
	if !found {
		t.Error("duration histogram carries no exemplar for metrics-exemplar-1")
	}
}

// TestDebugTracesEndpoint: the fleet-wide view returns the store's
// admission counters plus every tenant's retained traces.
func TestDebugTracesEndpoint(t *testing.T) {
	store := obs.NewTraceStore(obs.StoreOptions{Retain: 4})
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 13, TraceStore: store,
	})
	feedPoints(t, ts, "/v1/tenants/default/ingest", [][]float64{{0.2, 0.8}})

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("debug/traces: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Stats   obs.StoreStats             `json:"stats"`
		Tenants map[string]json.RawMessage `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Stats.Added == 0 {
		t.Error("store admission counters empty")
	}
	if _, ok := out.Tenants["default"]; !ok {
		t.Errorf("tenants = %v, want default", out.Tenants)
	}
}

// TestRouteLabelTable: the path normalizer keeps label cardinality
// bounded no matter what clients send.
func TestRouteLabelTable(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/v1/tenants/acme/coreset", "GET /v1/tenants/{id}/coreset"},
		{"POST", "/v1/tenants/%24weird/ingest", "POST /v1/tenants/{id}/ingest"},
		{"GET", "/v1/tenants/acme", "GET /v1/tenants/{id}"},
		{"DELETE", "/v1/tenants/acme", "DELETE /v1/tenants/{id}"},
		{"GET", "/v1/tenants/acme/traces", "GET /v1/tenants/{id}/traces"},
		{"POST", "/v1/tenants", "POST /v1/tenants"},
		{"GET", "/v1/stats", "GET /v1/stats"},
		{"GET", "/coreset", "GET /coreset"},
		{"GET", "/debug/pprof/heap", "GET /debug/pprof/*"},
		{"GET", "/v1/tenants/acme/nonsense", "other"},
		{"GET", "/totally/unknown", "other"},
		{"GET", "/v1/tenants/a/b/c", "other"},
	}
	for _, c := range cases {
		if got := routeLabel(c.method, c.path); got != c.want {
			t.Errorf("routeLabel(%s, %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
	if got := tenantFromPath("/v1/tenants/acme/ingest"); got != "acme" {
		t.Errorf("tenantFromPath = %q", got)
	}
	if got := tenantFromPath("/ingest"); got != defaultTenant {
		t.Errorf("legacy tenantFromPath = %q", got)
	}
	if got := tenantFromPath("/healthz"); got != "" {
		t.Errorf("untenanted tenantFromPath = %q", got)
	}
	for in, want := range map[string]string{
		"ok-id_1.2": "ok-id_1.2",
		"":          "",
		"has space": "",
		"way-too-long-" + strings.Repeat("x", 64): "",
	} {
		if got := sanitizeTraceID(in); got != want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}
