// Request tracing at the front door: every request gets a trace ID
// (caller-supplied X-Request-Id or freshly minted), a RequestTrace on
// its context that the library hangs spans off — quota admission,
// scheduler queue wait, the build span tree, WAL append+fsync — and,
// when it finishes, a TraceRecord in the bounded per-tenant trace
// store. The middleware also owns the HTTP-level metric families:
// requests by route and status code, and a request-duration histogram
// whose exemplar carries the last trace ID so a latency spike on a
// dashboard links straight to a retained trace.
package main

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mincore/internal/obs"
)

const (
	helpHTTPRequests = "HTTP requests served, by normalized route and status code."
	helpHTTPDuration = "HTTP request wall time by normalized route, in seconds. The JSON exposition carries the most recent trace ID as an exemplar."
)

// httpSeries caches the per-route metric series so the hot path does
// one sync.Map load instead of a registry lock per request. Route
// labels come from routeLabel, so cardinality is bounded by the route
// table, not by client-supplied paths.
var httpSeries sync.Map // "route\x00code" → *obs.Counter, "route" → *obs.Histogram

func httpRequestCounter(route, code string) *obs.Counter {
	key := route + "\x00" + code
	if c, ok := httpSeries.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := obs.Default.Counter("mincore_http_requests_total", helpHTTPRequests,
		obs.Labels{"route": route, "code": code})
	httpSeries.Store(key, c)
	return c
}

func httpDurationHist(route string) *obs.Histogram {
	if h, ok := httpSeries.Load(route); ok {
		return h.(*obs.Histogram)
	}
	h := obs.Default.Histogram("mincore_http_request_duration_seconds", helpHTTPDuration,
		nil, obs.Labels{"route": route})
	httpSeries.Store(route, h)
	return h
}

// routeLabel normalizes a request path onto the route table so metric
// label cardinality stays bounded: tenant IDs collapse to {id}, pprof
// sub-pages collapse to one label, and anything off the table is
// "other". The outer middleware cannot use ServeMux's matched pattern
// (the mux stamps it on its own request clone, after the middleware
// has run), so this mirrors the table in newMux by hand.
func routeLabel(method, path string) string {
	switch path {
	case "/v1/tenants", "/v1/stats",
		"/ingest", "/coreset", "/summary", "/stats", "/checkpoint",
		"/healthz", "/readyz", "/metrics", "/debug/vars", "/debug/traces":
		return method + " " + path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return method + " /debug/pprof/*"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/tenants/"); ok {
		_, leaf, found := strings.Cut(rest, "/")
		if !found {
			return method + " /v1/tenants/{id}"
		}
		switch leaf {
		case "ingest", "coreset", "summary", "stats", "snapshot", "recover", "traces":
			return method + " /v1/tenants/{id}/" + leaf
		}
	}
	return "other"
}

// tenantFromPath extracts the tenant a request addresses: the {id}
// path segment on versioned routes, the default tenant on the legacy
// aliases, "" for untenanted routes (tenant creation, fleet stats,
// probes).
func tenantFromPath(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v1/tenants/"); ok {
		id, _, _ := strings.Cut(rest, "/")
		return id
	}
	switch path {
	case "/ingest", "/coreset", "/summary", "/stats", "/checkpoint":
		return defaultTenant
	}
	return ""
}

// skipTrace marks the routes whose requests are observed (metrics) but
// not retained (trace store): probes and scrapes arrive on a clock and
// would sample-compete real traffic out of the normal ring.
func skipTrace(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return strings.HasPrefix(path, "/debug/")
}

// sanitizeTraceID accepts a caller-supplied X-Request-Id when it is
// short and shell-safe; anything else is discarded so a hostile header
// cannot smuggle bytes into logs, JSON, or diagnostic file names.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// statusWriter records the response status for the metrics and the
// trace record. Handlers that never call WriteHeader implicitly send
// 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush keeps streaming handlers (pprof profiles) working through the
// wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTracing wraps the route table with the request-tracing and
// HTTP-metrics middleware. store may be nil (-trace-retain 0): metrics
// are still recorded, no trace rides the context, and the per-request
// overhead degrades to a clock read and two atomic bumps.
func withTracing(next http.Handler, store *obs.TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.Method, r.URL.Path)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		var rt *obs.RequestTrace
		traced := store != nil && !skipTrace(r.URL.Path)
		if traced {
			rt = obs.StartRequest(route, sanitizeTraceID(r.Header.Get("X-Request-Id")))
			rt.SetTenant(tenantFromPath(r.URL.Path))
			w.Header().Set("X-Request-Id", rt.ID)
			r = r.WithContext(obs.WithRequest(r.Context(), rt))
		}

		next.ServeHTTP(sw, r)

		elapsed := time.Since(start)
		code := strconv.Itoa(sw.status)
		httpRequestCounter(route, code).Inc()
		if rt == nil {
			httpDurationHist(route).Observe(elapsed.Seconds())
			return
		}
		httpDurationHist(route).ObserveExemplar(elapsed.Seconds(), rt.ID)
		if sw.status >= 500 {
			rt.MarkAnomaly("error")
		}
		rt.Root.End()
		rec := &obs.TraceRecord{
			ID:     rt.ID,
			Tenant: rt.Tenant(),
			Route:  route,
			Method: r.Method,
			Status: sw.status,
			Start:  rt.Root.Start, Duration: rt.Root.Duration,
			Anomalies: rt.Anomalies(),
			Trace:     &obs.Trace{Root: rt.Root},
		}
		if sw.status >= 400 {
			rec.Error = http.StatusText(sw.status)
		}
		store.Add(rec)
	})
}

// tenantTraces renders GET /v1/tenants/{id}/traces: the retained
// traces for one tenant, newest-first. Deliberately no existence check
// against the registry — trace records outlive tenant deletion, and a
// post-mortem usually starts after the tenant is gone. ?n= bounds the
// response; ?anomalies=1 restricts it to the always-retained anomaly
// ring.
func (a *apiServer) tenantTraces(w http.ResponseWriter, r *http.Request) {
	if a.traces == nil {
		httpErrorCode(w, http.StatusNotFound, "tracing_disabled",
			"request tracing is disabled (-trace-retain 0)")
		return
	}
	id := r.PathValue("id")
	max := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpErrorCode(w, http.StatusBadRequest, "invalid_argument", "bad n "+strconv.Quote(v))
			return
		}
		max = n
	}
	var recs []*obs.TraceRecord
	anomaliesOnly := false
	switch r.URL.Query().Get("anomalies") {
	case "1", "true":
		anomaliesOnly = true
		recs = a.traces.Anomalies(id, max)
	default:
		recs = a.traces.Tenant(id, max)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":         id,
		"count":          len(recs),
		"anomalies_only": anomaliesOnly,
		"traces":         recs,
	})
}

// debugTraces renders GET /debug/traces: every tenant's retained
// traces plus the store's admission counters, for operators who do not
// yet know which tenant to look at.
func (a *apiServer) debugTraces(w http.ResponseWriter, r *http.Request) {
	if a.traces == nil {
		httpErrorCode(w, http.StatusNotFound, "tracing_disabled",
			"request tracing is disabled (-trace-retain 0)")
		return
	}
	tenants := map[string]any{}
	for _, id := range a.traces.Tenants() {
		key := id
		if key == "" {
			key = "(untenanted)"
		}
		tenants[key] = a.traces.Tenant(id, 0)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stats":   a.traces.Stats(),
		"tenants": tenants,
	})
}
