package main

// Degraded-mode HTTP tests: readiness with per-tenant health, the
// quarantine/recover lifecycle over the API, the hardened front door's
// body-size limits, and the new degraded-mode metric families.

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mincore"
	"mincore/internal/obs"
)

// corruptTenantDir plants an on-disk tenant whose manifest is garbage,
// so the registry quarantines it at startup.
func corruptTenantDir(t *testing.T, root, id string) {
	t.Helper()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tenant.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineLifecycleHTTP drives a corrupt tenant through the
// degraded-mode API: the pod boots and is ready (one sick tenant must
// not read as a fleet outage), the sick tenant is inspectable, refuses
// data-plane requests with the typed 503, and comes back via POST
// recover without a restart.
func TestQuarantineLifecycleHTTP(t *testing.T) {
	dir := t.TempDir()
	corruptTenantDir(t, dir, "sick")
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7, SnapshotDir: dir,
	})

	// Readiness: 200, degraded overall, with per-tenant state rows.
	resp, body := doJSON(t, ts, "GET", "/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status = %d, want 200 despite quarantine", resp.StatusCode)
	}
	if body["status"] != "degraded" {
		t.Errorf("/readyz status field = %v, want degraded", body["status"])
	}
	counts, _ := body["counts"].(map[string]any)
	if counts["quarantined"] != 1.0 || counts["ok"] != 1.0 {
		t.Errorf("/readyz counts = %v, want 1 quarantined / 1 ok", counts)
	}

	// The quarantined tenant is inspectable (200 + health), but its data
	// plane answers the typed 503.
	resp, body = doJSON(t, ts, "GET", "/v1/tenants/sick", nil)
	if resp.StatusCode != http.StatusOK || body["state"] != "quarantined" {
		t.Fatalf("GET sick = %d %v, want 200 quarantined", resp.StatusCode, body)
	}
	health, _ := body["health"].(map[string]any)
	if health["reason"] != "bad_manifest" {
		t.Errorf("quarantine reason = %v, want bad_manifest", health["reason"])
	}
	resp, body = doJSON(t, ts, "GET", "/v1/tenants/sick/coreset?eps=0.2", nil)
	wantEnvelope(t, resp, body, http.StatusServiceUnavailable, "tenant_quarantined")
	resp, body = doJSON(t, ts, "POST", "/v1/tenants/sick/ingest",
		map[string]any{"points": ringPoints(4, 0)})
	wantEnvelope(t, resp, body, http.StatusServiceUnavailable, "tenant_quarantined")

	// Creating over the quarantined id is refused: its on-disk state may
	// still be salvageable.
	resp, body = doJSON(t, ts, "POST", "/v1/tenants", map[string]any{"id": "sick"})
	wantEnvelope(t, resp, body, http.StatusServiceUnavailable, "tenant_quarantined")

	// Recover in place. The manifest is gone and there is no snapshot, so
	// the ladder bottoms out at a stream reset — but the tenant is live.
	resp, body = doJSON(t, ts, "POST", "/v1/tenants/sick/recover", nil)
	if resp.StatusCode != http.StatusOK || body["recovered"] != "sick" {
		t.Fatalf("recover = %d %v", resp.StatusCode, body)
	}
	if body["step"] != "reset_stream" || body["stream_n"] != 0.0 {
		t.Errorf("recover step/stream_n = %v/%v, want reset_stream/0", body["step"], body["stream_n"])
	}
	// Recovering a healthy tenant is an error, not a silent no-op.
	resp, _ = doJSON(t, ts, "POST", "/v1/tenants/sick/recover", nil)
	if resp.StatusCode == http.StatusOK {
		t.Error("recovering a live tenant succeeded")
	}

	// The recovered tenant serves: ingest, build, and readiness is ok.
	feedPoints(t, ts, "/v1/tenants/sick/ingest", ringPoints(64, 3))
	drainHTTP(t, ts, "sick", 64)
	resp, body = doJSON(t, ts, "GET", "/v1/tenants/sick/coreset?eps=0.3", nil)
	if resp.StatusCode != http.StatusOK || body["stale"] != nil {
		t.Fatalf("recovered coreset = %d (stale=%v), want fresh 200", resp.StatusCode, body["stale"])
	}
	if _, body = doJSON(t, ts, "GET", "/readyz", nil); body["status"] != "ok" {
		t.Errorf("/readyz after recover = %v, want ok", body["status"])
	}

	// /v1/stats lists no quarantined tenants anymore and carries the
	// scheduler's watchdog counter.
	_, body = doJSON(t, ts, "GET", "/v1/stats", nil)
	if q, ok := body["quarantined"].([]any); ok && len(q) != 0 {
		t.Errorf("/v1/stats quarantined = %v, want empty", q)
	}
	sched, _ := body["scheduler"].(map[string]any)
	if _, ok := sched["watchdog_kills"]; !ok {
		t.Errorf("/v1/stats scheduler missing watchdog_kills: %v", sched)
	}
}

// TestStaleServingHTTP: with a stale policy configured, a request whose
// own deadline kills the fresh build is answered 200 from the last
// certified coreset — with the stale flag, the staleness metadata block,
// and the Warning header. Degraded mode is visible at every layer.
func TestStaleServingHTTP(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7,
		StaleServe: mincore.WithStaleServe(time.Hour, 0),
	})
	feedPoints(t, ts, "/v1/tenants/default/ingest", ringPoints(200, 5))
	drainHTTP(t, ts, "default", 200)

	// Fresh certified build: retained as the (ε, algo) fallback.
	resp, body := doJSON(t, ts, "GET", "/v1/tenants/default/coreset?eps=0.2", nil)
	if resp.StatusCode != http.StatusOK || body["stale"] != nil {
		t.Fatalf("fresh coreset = %d (stale=%v)", resp.StatusCode, body["stale"])
	}

	// Advance the stream, then request with an already-expired deadline:
	// the fresh build cannot run, the fallback serves.
	feedPoints(t, ts, "/v1/tenants/default/ingest", ringPoints(50, 9))
	drainHTTP(t, ts, "default", 250)
	resp, body = doJSON(t, ts, "GET", "/v1/tenants/default/coreset?eps=0.2&timeout=1ns", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-eligible request = %d %v, want 200", resp.StatusCode, body)
	}
	if body["stale"] != true {
		t.Fatalf("response not marked stale: %v", body)
	}
	if w := resp.Header.Get("Warning"); !strings.Contains(w, "110") {
		t.Errorf("Warning header = %q, want RFC 9111 110 stale warning", w)
	}
	sm, _ := body["staleness"].(map[string]any)
	if sm == nil {
		t.Fatalf("response has no staleness block: %v", body)
	}
	if sm["reason"] != "deadline" {
		t.Errorf("staleness reason = %v, want deadline", sm["reason"])
	}
	if sm["stream_n"] != 200.0 || sm["points_behind"] != 50.0 {
		t.Errorf("staleness position = %v/%v, want 200/50", sm["stream_n"], sm["points_behind"])
	}
	rep, _ := body["report"].(map[string]any)
	if rep == nil || rep["Stale"] != true {
		t.Errorf("report Stale = %v, want true", rep["Stale"])
	}

	// The tenant's stats count the degraded serve.
	_, st := doJSON(t, ts, "GET", "/v1/tenants/default/stats", nil)
	if st["stale_served"] != 1.0 {
		t.Errorf("stale_served = %v, want 1", st["stale_served"])
	}
}

// TestRequestBodyLimits is the front-door hardening table: ingest bodies
// past -max-body-bytes and control-plane bodies past the fixed 1 MiB cap
// answer 413 request_too_large; everything within limits passes.
func TestRequestBodyLimits(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 7})

	bigString := strings.Repeat("a", 2<<20) // > createBodyLimit
	bigBatch := make([][]float64, 40_000)   // ~0.5 MiB of JSON > testMaxBody
	for i := range bigBatch {
		bigBatch[i] = []float64{0.25, 0.75}
	}

	for _, tc := range []struct {
		name, method, path string
		body               any
		wantStatus         int
		wantCode           string
	}{
		{"ingest within limit", "POST", "/v1/tenants/default/ingest",
			map[string]any{"points": ringPoints(32, 1)}, http.StatusAccepted, ""},
		{"ingest too large", "POST", "/v1/tenants/default/ingest",
			map[string]any{"points": bigBatch}, http.StatusRequestEntityTooLarge, "request_too_large"},
		{"legacy ingest too large", "POST", "/ingest",
			map[string]any{"points": bigBatch}, http.StatusRequestEntityTooLarge, "request_too_large"},
		{"create within limit", "POST", "/v1/tenants",
			map[string]any{"id": "roomy"}, http.StatusCreated, ""},
		{"create too large", "POST", "/v1/tenants",
			map[string]any{"id": bigString}, http.StatusRequestEntityTooLarge, "request_too_large"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, ts, tc.method, tc.path, tc.body)
			if tc.wantCode != "" {
				wantEnvelope(t, resp, body, tc.wantStatus, tc.wantCode)
				return
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.wantStatus, body)
			}
		})
	}
}

// TestDegradedMetricFamilies: the degraded-mode counters are registered
// at init, so every scrape exposes the families — a dashboard can alert
// on them before the first incident.
func TestDegradedMetricFamilies(t *testing.T) {
	dir := t.TempDir()
	corruptTenantDir(t, dir, "broken")
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7, SnapshotDir: dir,
	})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	for _, fam := range []string{
		"mincore_tenants_quarantined",
		"mincore_build_watchdog_kills_total",
		"mincore_stale_serves_total",
	} {
		if _, ok := samples[fam]; !ok {
			t.Errorf("scrape missing %s: %v", fam, samples)
		}
	}
	if v := samples["mincore_tenants_quarantined"]; v < 1 {
		t.Errorf("mincore_tenants_quarantined = %v, want >= 1 with a quarantined tenant", v)
	}
}
