package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mincore"
	"mincore/internal/obs"
)

// doJSON issues one request with an optional JSON body and decodes the
// JSON response into a generic map.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp, m
}

// drainHTTP polls a tenant's stats until ingested reaches want.
func drainHTTP(t *testing.T, ts *httptest.Server, tenant string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, st := doJSON(t, ts, "GET", "/v1/tenants/"+tenant+"/stats", nil)
		if n, _ := st["ingested"].(float64); n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s ingest stalled: %v", tenant, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// ringPoints returns n fat-ish 2D points as JSON-ready slices.
func ringPoints(n, phase int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{
			float64((i*7+phase)%19)/19 - 0.5,
			float64((i*11+phase)%23)/23 - 0.5,
		}
	}
	return pts
}

// wantEnvelope asserts the single JSON error envelope shape.
func wantEnvelope(t *testing.T, resp *http.Response, body map[string]any, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("status = %d, want %d (body %v)", resp.StatusCode, status, body)
	}
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	if env["code"] != code {
		t.Errorf("error code = %v, want %q", env["code"], code)
	}
	if msg, _ := env["message"].(string); msg == "" {
		t.Errorf("error envelope has empty message: %v", env)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
}

// TestTenantLifecycleHTTP walks one tenant through its whole life over
// the v1 API: create → ingest → coreset → snapshot → delete → 404, and
// checks deletion removes the tenant's on-disk footprint.
func TestTenantLifecycleHTTP(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 5,
		SnapshotDir:        dir,
		CheckpointInterval: time.Hour,
	})

	resp, body := doJSON(t, ts, "POST", "/v1/tenants",
		map[string]any{"id": "acme", "eps": 0.2, "seed": 3, "weight": 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d, body %v", resp.StatusCode, body)
	}
	if body["id"] != "acme" || body["eps"] != 0.2 || body["weight"] != 2.0 {
		t.Errorf("create response = %v", body)
	}

	_, list := doJSON(t, ts, "GET", "/v1/tenants", nil)
	if rows, _ := list["tenants"].([]any); len(rows) != 2 { // default + acme
		t.Errorf("tenant list = %v, want 2 rows", list)
	}

	resp, body = doJSON(t, ts, "POST", "/v1/tenants/acme/ingest",
		map[string]any{"points": ringPoints(48, 1)})
	if resp.StatusCode != http.StatusAccepted || body["ingested"] != 48.0 {
		t.Fatalf("ingest: status %d body %v", resp.StatusCode, body)
	}
	drainHTTP(t, ts, "acme", 48)

	resp, body = doJSON(t, ts, "GET", "/v1/tenants/acme/coreset", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coreset: status %d body %v", resp.StatusCode, body)
	}
	if body["eps"] != 0.2 { // ε omitted → the tenant's default, not a global
		t.Errorf("default-ε build used eps=%v, want tenant default 0.2", body["eps"])
	}
	if size, _ := body["size"].(float64); size < 1 {
		t.Errorf("coreset size = %v", body["size"])
	}

	resp, body = doJSON(t, ts, "POST", "/v1/tenants/acme/snapshot", nil)
	if resp.StatusCode != http.StatusOK || body["points"] != 48.0 {
		t.Fatalf("snapshot: status %d body %v", resp.StatusCode, body)
	}
	snap := filepath.Join(dir, "acme", "stream.snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	resp, body = doJSON(t, ts, "DELETE", "/v1/tenants/acme", nil)
	if resp.StatusCode != http.StatusOK || body["deleted"] != "acme" {
		t.Fatalf("delete: status %d body %v", resp.StatusCode, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "acme")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tenant dir survives deletion: %v", err)
	}
	resp, body = doJSON(t, ts, "GET", "/v1/tenants/acme/stats", nil)
	wantEnvelope(t, resp, body, http.StatusNotFound, "tenant_not_found")
}

// TestTenantErrorEnvelope exercises the documented error-code set and
// asserts every failure renders the one envelope shape.
func TestTenantErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 5})

	resp, body := doJSON(t, ts, "GET", "/v1/tenants/default/coreset", nil)
	wantEnvelope(t, resp, body, http.StatusConflict, "empty_stream")

	resp, body = doJSON(t, ts, "POST", "/v1/tenants", map[string]any{"id": "bad/id"})
	wantEnvelope(t, resp, body, http.StatusBadRequest, "bad_tenant_id")

	resp, body = doJSON(t, ts, "POST", "/v1/tenants", map[string]any{"id": "default"})
	wantEnvelope(t, resp, body, http.StatusConflict, "tenant_exists")

	resp, body = doJSON(t, ts, "GET", "/v1/tenants/ghost", nil)
	wantEnvelope(t, resp, body, http.StatusNotFound, "tenant_not_found")

	resp, body = doJSON(t, ts, "DELETE", "/v1/tenants/ghost", nil)
	wantEnvelope(t, resp, body, http.StatusNotFound, "tenant_not_found")

	resp, body = doJSON(t, ts, "POST", "/v1/tenants/default/ingest",
		map[string]any{"points": [][]float64{{1}}}) // wrong dimension
	wantEnvelope(t, resp, body, http.StatusBadRequest, "invalid_point")

	resp, body = doJSON(t, ts, "GET", "/v1/tenants/default/coreset?eps=nope", nil)
	wantEnvelope(t, resp, body, http.StatusBadRequest, "invalid_argument")

	// Quota shedding: burst of 1 point can never admit a 2-point batch.
	if resp, body = doJSON(t, ts, "POST", "/v1/tenants",
		map[string]any{"id": "metered", "quota_points_per_sec": 1}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create metered: %d %v", resp.StatusCode, body)
	}
	resp, body = doJSON(t, ts, "POST", "/v1/tenants/metered/ingest",
		map[string]any{"points": ringPoints(2, 0)})
	wantEnvelope(t, resp, body, http.StatusTooManyRequests, "quota_exceeded")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

// TestLegacyRoutesAliasDefaultTenant: the unversioned routes serve the
// default tenant, advertise their deprecation, and keep the
// single-tenant response shapes (no multi-tenant keys).
func TestLegacyRoutesAliasDefaultTenant(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.05, Seed: 5})

	feedPoints(t, ts, "/ingest", ringPoints(40, 2)) // legacy ingest path
	drainHTTP(t, ts, defaultTenant, 40)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v1/tenants/default>; rel="successor-version"` {
		t.Errorf("legacy Link header = %q", link)
	}
	var legacy map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatalf("decode legacy stats: %v", err)
	}
	resp.Body.Close()
	for _, key := range []string{"tenant", "quota_shed"} {
		if _, ok := legacy[key]; ok {
			t.Errorf("legacy /stats leaks multi-tenant key %q", key)
		}
	}

	resp2, v1 := doJSON(t, ts, "GET", "/v1/tenants/default/stats", nil)
	if resp2.Header.Get("Deprecation") != "" {
		t.Error("v1 route carries a Deprecation header")
	}
	if v1["tenant"] != "default" {
		t.Errorf("v1 stats tenant = %v, want default", v1["tenant"])
	}
	if _, ok := v1["quota_shed"]; !ok {
		t.Error("v1 stats missing quota_shed")
	}
	if legacy["ingested"] != v1["ingested"] {
		t.Errorf("legacy and v1 stats disagree: %v vs %v", legacy["ingested"], v1["ingested"])
	}

	// Legacy /coreset keeps the historical ε default of 0.05.
	_, core := doJSON(t, ts, "GET", "/coreset", nil)
	if core["eps"] != 0.05 {
		t.Errorf("legacy /coreset eps = %v, want 0.05", core["eps"])
	}
}

// TestTenantMetricsLabels: the scrape carries tenant-labeled series for
// the service-boundary families of registry-hosted tenants.
func TestTenantMetricsLabels(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 5})

	for _, id := range []string{"met.a", "met.b"} {
		if resp, body := doJSON(t, ts, "POST", "/v1/tenants", map[string]any{"id": id, "seed": 9}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", id, resp.StatusCode, body)
		}
	}
	doJSON(t, ts, "POST", "/v1/tenants/met.a/ingest", map[string]any{"points": ringPoints(40, 3)})
	doJSON(t, ts, "POST", "/v1/tenants/met.b/ingest", map[string]any{"points": ringPoints(24, 4)})
	drainHTTP(t, ts, "met.a", 40)
	drainHTTP(t, ts, "met.b", 24)
	if resp, body := doJSON(t, ts, "GET", "/v1/tenants/met.a/coreset?eps=0.3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("coreset met.a: %d %v", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}

	for key, min := range map[string]float64{
		`mincore_ingest_points_total{tenant="met.a"}`:                    40,
		`mincore_ingest_points_total{tenant="met.b"}`:                    24,
		`mincore_serve_build_requests_total{tenant="met.a"}`:             1,
		`mincore_sched_grants_total{tenant="met.a"}`:                     1,
		`mincore_build_cache_misses_total{layer="serve",tenant="met.a"}`: 1,
		`mincore_tenants`: 3, // default + met.a + met.b
	} {
		if v, ok := samples[key]; !ok || v < min {
			t.Errorf("sample %s = %v (present=%v), want >= %v", key, v, ok, min)
		}
	}
	// The light tenant built nothing: its build counter exists but is 0.
	if v := samples[`mincore_serve_build_requests_total{tenant="met.b"}`]; v != 0 {
		t.Errorf(`met.b build requests = %v, want 0`, v)
	}
}

// TestV1RegistryStats: /v1/stats returns one row per tenant (with the
// per-tenant cache and checkpoint columns) plus scheduler counters.
func TestV1RegistryStats(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 5,
		SnapshotDir:        dir,
		CheckpointInterval: time.Hour,
	})
	for _, id := range []string{"rows-a", "rows-b"} {
		if resp, body := doJSON(t, ts, "POST", "/v1/tenants", map[string]any{"id": id, "seed": 11}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", id, resp.StatusCode, body)
		}
	}
	doJSON(t, ts, "POST", "/v1/tenants/rows-a/ingest", map[string]any{"points": ringPoints(32, 5)})
	drainHTTP(t, ts, "rows-a", 32)
	for i := 0; i < 2; i++ { // second request is a cache hit
		if resp, body := doJSON(t, ts, "GET", "/v1/tenants/rows-a/coreset?eps=0.3", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("coreset rows-a: %d %v", resp.StatusCode, body)
		}
	}
	doJSON(t, ts, "POST", "/v1/tenants/rows-a/snapshot", nil)

	resp, body := doJSON(t, ts, "GET", "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d %v", resp.StatusCode, body)
	}
	if body["tenant_count"] != 3.0 {
		t.Errorf("tenant_count = %v, want 3", body["tenant_count"])
	}
	rows, _ := body["tenants"].(map[string]any)
	a, _ := rows["rows-a"].(map[string]any)
	b, _ := rows["rows-b"].(map[string]any)
	if a == nil || b == nil {
		t.Fatalf("missing per-tenant rows: %v", rows)
	}
	if a["cache_hits"] != 1.0 || a["cache_misses"] != 1.0 {
		t.Errorf("rows-a cache counters = %v/%v, want 1/1", a["cache_hits"], a["cache_misses"])
	}
	if b["cache_hits"] != 0.0 || b["cache_misses"] != 0.0 {
		t.Errorf("rows-b cache counters leaked: %v/%v", b["cache_hits"], b["cache_misses"])
	}
	if _, ok := a["checkpoint_lag_seconds"]; !ok {
		t.Error("rows-a missing checkpoint_lag_seconds after snapshot")
	}
	if _, ok := b["checkpoint_lag_seconds"]; ok {
		t.Error("rows-b has checkpoint lag without any checkpoint")
	}
	sched, _ := body["scheduler"].(map[string]any)
	if sched == nil {
		t.Fatalf("missing scheduler block: %v", body)
	}
	grants, _ := sched["tenant_grants"].(map[string]any)
	if g, _ := grants["rows-a"].(float64); g < 1 {
		t.Errorf("scheduler grants for rows-a = %v, want >= 1", grants)
	}
	if fmt.Sprint(sched["inflight"]) != "0" {
		t.Errorf("scheduler inflight = %v, want 0", sched["inflight"])
	}
}
