package main

// Tests for the durable-ingest surface of mcserve: the -wal-sync flag
// grammar, the acknowledged==durable graceful shutdown, the 503
// storage_unavailable contract when the log refuses a batch, and the
// mincore_wal_* metric families on the scrape.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mincore"
	"mincore/internal/faultinject"
	"mincore/internal/obs"
)

func TestParseWALConfig(t *testing.T) {
	cases := []struct {
		sync    string
		mode    mincore.WALSyncMode
		nilCfg  bool
		wantErr bool
	}{
		{sync: "none", nilCfg: true},
		{sync: "batch", mode: mincore.WALSyncEveryBatch},
		{sync: "", mode: mincore.WALSyncEveryBatch},
		{sync: "off", mode: mincore.WALSyncOff},
		{sync: "25ms", mode: mincore.WALSyncInterval},
		{sync: "2s", mode: mincore.WALSyncInterval},
		{sync: "always", wantErr: true},
		{sync: "-5ms", wantErr: true},
		{sync: "0s", wantErr: true},
	}
	for _, c := range cases {
		cfg, err := parseWALConfig(c.sync, 1<<20)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseWALConfig(%q): want error, got %+v", c.sync, cfg)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWALConfig(%q): %v", c.sync, err)
			continue
		}
		if c.nilCfg {
			if cfg != nil {
				t.Errorf("parseWALConfig(%q) = %+v, want nil (WAL disabled)", c.sync, cfg)
			}
			continue
		}
		if cfg == nil || cfg.Sync != c.mode {
			t.Errorf("parseWALConfig(%q) = %+v, want mode %v", c.sync, cfg, c.mode)
		}
		if cfg != nil && cfg.SegmentBytes != 1<<20 {
			t.Errorf("parseWALConfig(%q) segment bytes = %d, want 1<<20", c.sync, cfg.SegmentBytes)
		}
	}
	if cfg, err := parseWALConfig("25ms", 0); err != nil || cfg.SyncInterval != 25*time.Millisecond {
		t.Errorf("group-commit window not threaded: %+v, %v", cfg, err)
	}
}

// TestGracefulShutdownDrains drives the full shutdown sequence through
// the injectable signal channel: the listener stops admitting, the
// registry writes every tenant's final checkpoint and syncs its WAL,
// and a restarted registry recovers the exact acknowledged stream.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	opts := mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7,
		SnapshotDir: dir,
		WAL:         &mincore.WALConfig{Sync: mincore.WALSyncEveryBatch},
	}
	ts, reg := newTestServer(t, opts)

	pts := make([][]float64, 0, 120)
	for i := 0; i < 120; i++ {
		pts = append(pts, []float64{float64(i%17) / 17, float64((i*7)%13) / 13})
	}
	feedPoints(t, ts, "/v1/tenants/default/ingest", pts)

	sig := make(chan os.Signal, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		gracefulShutdown(sig, ts.Config, reg, obs.Discard(), 10*time.Second)
	}()
	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("graceful shutdown did not complete")
	}

	// The registry refuses new work after the drain.
	if _, err := reg.CreateTenant(mincore.TenantConfig{ID: "late"}); err == nil {
		t.Fatalf("registry accepted work after graceful shutdown")
	}

	// A restart recovers every acknowledged point — the final checkpoint
	// covers the stream, so nothing needs the log (replayed == 0).
	reg2, err := mincore.NewTenantRegistry(opts)
	if err != nil {
		t.Fatalf("restart after shutdown: %v", err)
	}
	defer reg2.Close()
	tnt, err := reg2.Tenant(defaultTenant)
	if err != nil {
		t.Fatalf("default tenant after restart: %v", err)
	}
	if got := tnt.Service().RestoredPoints(); got != len(pts) {
		t.Fatalf("restored %d points after graceful shutdown, want %d", got, len(pts))
	}
	if got := tnt.Service().ReplayedPoints(); got != 0 {
		t.Fatalf("replayed %d points, want 0 (final checkpoint covers the stream)", got)
	}
}

// TestIngestStorageUnavailableHTTP pins the HTTP face of a failing log:
// 503 with the storage_unavailable envelope and Retry-After, a degraded
// /readyz with the storage_unavailable reason, and full recovery (plus
// the WAL columns in the stats row) after one successful write.
func TestIngestStorageUnavailableHTTP(t *testing.T) {
	defer faultinject.Disable()
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7,
		SnapshotDir: t.TempDir(),
		WAL:         &mincore.WALConfig{Sync: mincore.WALSyncEveryBatch},
	})
	body := func() *strings.Reader {
		return strings.NewReader(`{"points": [[0.5, 0.5], [0.25, 0.75]]}`)
	}

	faultinject.Enable(faultinject.Config{Rate: 1, Times: 1,
		Sites: []faultinject.Site{faultinject.SiteWALAppend}})
	resp, err := http.Post(ts.URL+"/v1/tenants/default/ingest", "application/json", body())
	faultinject.Disable()
	if err != nil {
		t.Fatalf("POST ingest: %v", err)
	}
	var envelope struct {
		Error struct{ Code, Message string } `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != "storage_unavailable" {
		t.Fatalf("failed append: status %d code %q, want 503 storage_unavailable",
			resp.StatusCode, envelope.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 storage_unavailable without Retry-After")
	}

	// Readiness reports the tenant degraded with the storage reason.
	var ready struct {
		Status  string `json:"status"`
		Tenants []struct {
			ID     string `json:"id"`
			State  string `json:"state"`
			Reason string `json:"reason"`
		} `json:"tenants"`
	}
	getJSON(t, ts, "/readyz", &ready)
	if ready.Status != "degraded" {
		t.Fatalf("/readyz status %q after refused batch, want degraded", ready.Status)
	}
	found := false
	for _, h := range ready.Tenants {
		if h.ID == defaultTenant {
			found = true
			if h.State != "degraded" || h.Reason != "storage_unavailable" {
				t.Fatalf("default tenant health = %+v, want degraded/storage_unavailable", h)
			}
		}
	}
	if !found {
		t.Fatalf("/readyz has no default-tenant row: %+v", ready.Tenants)
	}

	// One successful write clears the condition end to end.
	resp, err = http.Post(ts.URL+"/v1/tenants/default/ingest", "application/json", body())
	if err != nil {
		t.Fatalf("POST ingest after fault: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after fault: status %d, want 202", resp.StatusCode)
	}
	getJSON(t, ts, "/readyz", &ready)
	if ready.Status != "ok" {
		t.Fatalf("/readyz status %q after recovery, want ok", ready.Status)
	}

	// The per-tenant stats row carries the WAL columns.
	var stats struct {
		WALSegments     int   `json:"wal_segments"`
		WALBytes        int64 `json:"wal_bytes"`
		ReplayedPoints  *int  `json:"replayed_points"`
		StorageDegraded *bool `json:"storage_degraded"`
	}
	getJSON(t, ts, "/v1/tenants/default/stats", &stats)
	if stats.WALSegments < 1 || stats.WALBytes <= 0 {
		t.Fatalf("stats row wal_segments=%d wal_bytes=%d, want a live segment",
			stats.WALSegments, stats.WALBytes)
	}
	if stats.ReplayedPoints == nil || stats.StorageDegraded == nil {
		t.Fatalf("stats row missing replayed_points/storage_degraded")
	}
	if *stats.StorageDegraded {
		t.Fatalf("storage_degraded still true after successful write")
	}
}

// TestWALMetricFamilies asserts the scrape exposes the WAL families
// with live samples once a WAL-backed tenant has ingested and
// checkpointed.
func TestWALMetricFamilies(t *testing.T) {
	ts, reg := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7,
		SnapshotDir: t.TempDir(),
		WAL:         &mincore.WALConfig{Sync: mincore.WALSyncEveryBatch},
	})
	pts := make([][]float64, 0, 48)
	for i := 0; i < 48; i++ {
		pts = append(pts, []float64{float64(i%17) / 17, float64((i*7)%13) / 13})
	}
	feedPoints(t, ts, "/v1/tenants/default/ingest", pts)
	tnt, err := reg.Tenant(defaultTenant)
	if err != nil {
		t.Fatalf("default tenant: %v", err)
	}
	if err := tnt.Checkpoint(); err != nil { // drives wal_truncations
		t.Fatalf("checkpoint: %v", err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	for _, fam := range []string{
		"mincore_wal_appends_total",
		"mincore_wal_appended_points_total",
		"mincore_wal_append_failures_total",
		"mincore_wal_fsyncs_total",
		"mincore_wal_replayed_points_total",
		"mincore_wal_truncations_total",
		"mincore_wal_segments",
		"mincore_wal_bytes",
	} {
		if _, ok := samples[fam]; !ok {
			t.Errorf("scrape missing %s", fam)
		}
	}
	// The tenant-labeled series carry the traffic.
	lbl := fmt.Sprintf(`{tenant=%q}`, defaultTenant)
	if v := samples["mincore_wal_appends_total"+lbl]; v < 1 {
		t.Errorf("mincore_wal_appends_total%s = %v, want >= 1", lbl, v)
	}
	// >= because the registry-wide tenant label accumulates across tests
	// in this binary — obs.Default is process-global.
	if v := samples["mincore_wal_appended_points_total"+lbl]; v < 48 {
		t.Errorf("mincore_wal_appended_points_total%s = %v, want >= 48", lbl, v)
	}
	if v := samples["mincore_wal_truncations_total"+lbl]; v < 1 {
		t.Errorf("mincore_wal_truncations_total%s = %v, want >= 1 after checkpoint", lbl, v)
	}
}

// getJSON fetches path from the test server and decodes the JSON body.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}
