// Command mcserve runs the supervised, durable ingest service as an
// HTTP endpoint: points stream in, crash-safe snapshots stream out, and
// certified coresets are served under admission control.
//
// Usage:
//
//	mcserve -addr :8080 -dim 3 -snapshot /var/lib/mincore/stream.snap
//
// Endpoints:
//
//	POST /ingest       {"points": [[...], ...]} → 202 {"ingested": n}
//	                   400 on invalid points, 503 when shedding load
//	GET  /coreset      ?eps=0.05&algo=auto&timeout=5s → certified coreset
//	                   + build report with phase trace (503 when
//	                   builds are saturated)
//	GET  /summary      current sketch champions (no build)
//	GET  /stats        service counters, checkpoint state + lag, last error
//	POST /checkpoint   force a durable snapshot now
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text-format metrics (solver + service)
//	GET  /debug/vars   expvar JSON (includes the metric registry)
//	GET  /debug/pprof/ runtime profiling (CPU, heap, goroutines, ...)
//
// Structured logs go to stderr; tune with -log-level (debug|info|warn|
// error) and -log-format (text|json).
//
// On restart the service recovers the newest decodable snapshot
// generation and reports the restored stream position in /stats
// ("restored_points"); producers should replay their stream from that
// offset — replaying more is harmless, maxima ignore duplicates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mincore"
	"mincore/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 0, "point dimension of the stream (required)")
	eps := flag.Float64("eps", 0.05, "target sketch loss ε used to size the direction net")
	alpha := flag.Float64("alpha", 0.25, "assumed stream fatness α for sketch sizing")
	seed := flag.Int64("seed", 1, "random seed (direction net and builds)")
	snapshotPath := flag.String("snapshot", "", "snapshot path for crash-safe checkpoints (empty = no durability)")
	ckptEvery := flag.Duration("checkpoint-every", 10*time.Second, "base interval between automatic checkpoints")
	workers := flag.Int("ingest-workers", 2, "ingest worker goroutines (one summary shard each)")
	queue := flag.Int("queue", 256, "ingest queue capacity in batches (full queue sheds with 503)")
	inflight := flag.Int("max-inflight-builds", 2, "concurrent coreset builds admitted (excess sheds with 503)")
	buildWorkers := flag.Int("build-workers", 0, "worker-pool size for builds (0 = GOMAXPROCS)")
	buildCache := flag.Int("build-cache", 0, "served-coreset cache entries (0 = default of 32, negative = disabled); invalidated on ingest")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	flag.Parse()

	if *dim < 1 {
		fmt.Fprintln(os.Stderr, "mcserve: -dim is required")
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(2)
	}
	obs.Enable()
	obs.Default.PublishExpvar("mincore_metrics")

	svc, err := mincore.NewIngestService(mincore.ServeOptions{
		Dim: *dim, Eps: *eps, Alpha: *alpha, Seed: *seed,
		SnapshotPath: *snapshotPath, CheckpointInterval: *ckptEvery,
		IngestWorkers: *workers, QueueSize: *queue,
		MaxInflightBuilds: *inflight, BuildWorkers: *buildWorkers,
		BuildCache: *buildCache,
		Logger:     logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(1)
	}
	log := obs.Component(logger, "mcserve")
	if n := svc.RestoredPoints(); n > 0 {
		log.Info("recovered snapshot; replay from restored position",
			slog.Int("restored_points", n))
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(svc, log)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Info("shutting down: draining ingest queue and writing final checkpoint")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := svc.Close(); err != nil && !errors.Is(err, mincore.ErrServiceClosed) {
			log.Error("final checkpoint failed", slog.Any("error", err))
		}
	}()
	log.Info("mcserve listening",
		slog.String("addr", *addr), slog.Int("dim", *dim),
		slog.String("snapshot", *snapshotPath))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listen failed", slog.Any("error", err))
		os.Exit(1)
	}
	<-done
}

// newMux builds the full route table. Split from main so the smoke
// tests can drive the handlers through httptest without a listener.
func newMux(svc *mincore.IngestService, log *slog.Logger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points []mincore.Point `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := svc.Feed(req.Points...); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int{"ingested": len(req.Points)})
	})

	mux.HandleFunc("GET /coreset", func(w http.ResponseWriter, r *http.Request) {
		epsQ := 0.05
		if v := r.URL.Query().Get("eps"); v != "" {
			if _, err := fmt.Sscanf(v, "%g", &epsQ); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad eps %q", v))
				return
			}
		}
		algo := mincore.Auto
		if v := r.URL.Query().Get("algo"); v != "" {
			algo = mincore.Algorithm(v)
		}
		ctx := r.Context() // client disconnect cancels the build
		if v := r.URL.Query().Get("timeout"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", v))
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		q, err := svc.Coreset(ctx, epsQ, algo)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		if rep := q.Report; rep != nil {
			log.Info("build served",
				slog.String("algorithm", string(rep.Algorithm)),
				slog.Float64("eps", rep.Eps),
				slog.Float64("certified_loss", rep.CertifiedLoss),
				slog.Bool("certified", rep.Certified),
				slog.Int("size", q.Size()),
				slog.Int("attempts", rep.Attempts),
				slog.Duration("wall", rep.Wall),
				slog.String("spans", rep.Trace.Summary()))
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"size": q.Size(), "eps": q.Eps, "loss": q.Loss,
			"algorithm": q.Algorithm, "points": q.Points, "report": q.Report,
		})
	})

	mux.HandleFunc("GET /summary", func(w http.ResponseWriter, r *http.Request) {
		ss, err := svc.Summary()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"n": ss.N(), "size": ss.Size(), "points": ss.Coreset(),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		resp := map[string]any{
			"ingested": st.Ingested, "rejected": st.Rejected, "invalid": st.Invalid,
			"worker_panics": st.WorkerPanics,
			"builds":        st.Builds, "builds_shed": st.BuildsShed,
			"cache_hits":            st.CacheHits,
			"cache_misses":          st.CacheMisses,
			"restored_points":       st.RestoredPoints,
			"stream_n":              svc.StreamN(),
			"checkpoint_generation": st.CheckpointGeneration,
			"checkpoint_points":     st.CheckpointPoints,
			"checkpoint_failures":   st.CheckpointFailures,
		}
		if !st.LastCheckpoint.IsZero() {
			resp["last_checkpoint"] = st.LastCheckpoint.Format(time.RFC3339Nano)
			resp["checkpoint_lag_seconds"] = st.CheckpointLag.Seconds()
		}
		if st.LastError != nil {
			resp["last_error"] = st.LastError.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Checkpoint(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		st := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": st.CheckpointGeneration, "points": st.CheckpointPoints,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})

	mux.Handle("GET /debug/vars", expvar.Handler())
	// net/http/pprof registers on DefaultServeMux; mount its handlers
	// explicitly since this mux is not the default one.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return mux
}

// statusFor maps the service's typed errors onto HTTP semantics: shed →
// 503 + Retry-After handled by httpError, bad input → 400, deadline →
// 504.
func statusFor(err error) int {
	switch {
	case errors.Is(err, mincore.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, mincore.ErrInvalidPoint), errors.Is(err, mincore.ErrUnknownAlgorithm):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, mincore.ErrServiceClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON sets the JSON content type before the status line — every
// JSON-producing handler funnels through here or httpError.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
