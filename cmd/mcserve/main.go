// Command mcserve runs the supervised, durable ingest service as an
// HTTP endpoint: points stream in, crash-safe snapshots stream out, and
// certified coresets are served under admission control.
//
// Usage:
//
//	mcserve -addr :8080 -dim 3 -snapshot /var/lib/mincore/stream.snap
//
// Endpoints:
//
//	POST /ingest      {"points": [[...], ...]} → 202 {"ingested": n}
//	                  400 on invalid points, 503 when shedding load
//	GET  /coreset     ?eps=0.05&algo=auto&timeout=5s → certified coreset
//	                  + build report (503 when builds are saturated)
//	GET  /summary     current sketch champions (no build)
//	GET  /stats       service counters, checkpoint state, last error
//	POST /checkpoint  force a durable snapshot now
//	GET  /healthz     liveness
//
// On restart the service recovers the newest decodable snapshot
// generation and reports the restored stream position in /stats
// ("restored_points"); producers should replay their stream from that
// offset — replaying more is harmless, maxima ignore duplicates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mincore"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 0, "point dimension of the stream (required)")
	eps := flag.Float64("eps", 0.05, "target sketch loss ε used to size the direction net")
	alpha := flag.Float64("alpha", 0.25, "assumed stream fatness α for sketch sizing")
	seed := flag.Int64("seed", 1, "random seed (direction net and builds)")
	snapshotPath := flag.String("snapshot", "", "snapshot path for crash-safe checkpoints (empty = no durability)")
	ckptEvery := flag.Duration("checkpoint-every", 10*time.Second, "base interval between automatic checkpoints")
	workers := flag.Int("ingest-workers", 2, "ingest worker goroutines (one summary shard each)")
	queue := flag.Int("queue", 256, "ingest queue capacity in batches (full queue sheds with 503)")
	inflight := flag.Int("max-inflight-builds", 2, "concurrent coreset builds admitted (excess sheds with 503)")
	buildWorkers := flag.Int("build-workers", 0, "worker-pool size for builds (0 = GOMAXPROCS)")
	flag.Parse()

	if *dim < 1 {
		fmt.Fprintln(os.Stderr, "mcserve: -dim is required")
		os.Exit(2)
	}
	svc, err := mincore.NewIngestService(mincore.ServeOptions{
		Dim: *dim, Eps: *eps, Alpha: *alpha, Seed: *seed,
		SnapshotPath: *snapshotPath, CheckpointInterval: *ckptEvery,
		IngestWorkers: *workers, QueueSize: *queue,
		MaxInflightBuilds: *inflight, BuildWorkers: *buildWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(1)
	}
	if n := svc.RestoredPoints(); n > 0 {
		log.Printf("recovered snapshot: stream position %d — replay from there", n)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points []mincore.Point `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := svc.Feed(req.Points...); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]int{"ingested": len(req.Points)})
	})

	mux.HandleFunc("GET /coreset", func(w http.ResponseWriter, r *http.Request) {
		epsQ := 0.05
		if v := r.URL.Query().Get("eps"); v != "" {
			if _, err := fmt.Sscanf(v, "%g", &epsQ); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad eps %q", v))
				return
			}
		}
		algo := mincore.Auto
		if v := r.URL.Query().Get("algo"); v != "" {
			algo = mincore.Algorithm(v)
		}
		ctx := r.Context() // client disconnect cancels the build
		if v := r.URL.Query().Get("timeout"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", v))
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		q, err := svc.Coreset(ctx, epsQ, algo)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"size": q.Size(), "eps": q.Eps, "loss": q.Loss,
			"algorithm": q.Algorithm, "points": q.Points, "report": q.Report,
		})
	})

	mux.HandleFunc("GET /summary", func(w http.ResponseWriter, r *http.Request) {
		ss, err := svc.Summary()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"n": ss.N(), "size": ss.Size(), "points": ss.Coreset(),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		resp := map[string]any{
			"ingested": st.Ingested, "rejected": st.Rejected, "invalid": st.Invalid,
			"worker_panics": st.WorkerPanics,
			"builds":        st.Builds, "builds_shed": st.BuildsShed,
			"restored_points":       st.RestoredPoints,
			"stream_n":              svc.StreamN(),
			"checkpoint_generation": st.CheckpointGeneration,
			"checkpoint_points":     st.CheckpointPoints,
			"checkpoint_failures":   st.CheckpointFailures,
		}
		if !st.LastCheckpoint.IsZero() {
			resp["last_checkpoint"] = st.LastCheckpoint.Format(time.RFC3339Nano)
		}
		if st.LastError != nil {
			resp["last_error"] = st.LastError.Error()
		}
		json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Checkpoint(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		st := svc.Stats()
		json.NewEncoder(w).Encode(map[string]any{
			"generation": st.CheckpointGeneration, "points": st.CheckpointPoints,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: draining ingest queue and writing final checkpoint")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := svc.Close(); err != nil && !errors.Is(err, mincore.ErrServiceClosed) {
			log.Printf("final checkpoint failed: %v", err)
		}
	}()
	log.Printf("mcserve listening on %s (dim=%d, snapshot=%q)", *addr, *dim, *snapshotPath)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// statusFor maps the service's typed errors onto HTTP semantics: shed →
// 503 + Retry-After handled by httpError, bad input → 400, deadline →
// 504.
func statusFor(err error) int {
	switch {
	case errors.Is(err, mincore.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, mincore.ErrInvalidPoint), errors.Is(err, mincore.ErrUnknownAlgorithm):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, mincore.ErrServiceClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
