// Command mcserve runs the multi-tenant coreset service as an HTTP
// endpoint: tenant streams are created and deleted over a versioned
// API, points stream in per tenant, crash-safe snapshots stream out
// into per-tenant directories, and certified coresets are served under
// weighted-fair admission control so no tenant can starve another.
//
// Usage:
//
//	mcserve -addr :8080 -dim 3 -snapshot-dir /var/lib/mincore
//
// Versioned API (v1):
//
//	POST   /v1/tenants               create a tenant
//	                                 {"id": "acme", "eps": 0.05, "weight": 2,
//	                                  "quota_points_per_sec": 1000}
//	GET    /v1/tenants               list tenants
//	GET    /v1/tenants/{id}          one tenant's config + stream position
//	DELETE /v1/tenants/{id}          stop the tenant, drop its snapshots
//	POST   /v1/tenants/{id}/ingest   {"points": [[...], ...]} → 202
//	GET    /v1/tenants/{id}/coreset  ?eps=0.05&algo=auto&timeout=5s
//	                                 (eps omitted → the tenant's default ε)
//	GET    /v1/tenants/{id}/summary  current sketch champions (no build)
//	GET    /v1/tenants/{id}/stats    per-tenant counters incl. checkpoint
//	                                 lag and cache hit/miss counts
//	POST   /v1/tenants/{id}/snapshot force a durable checkpoint now
//	POST   /v1/tenants/{id}/recover  repair a quarantined tenant in place
//	GET    /v1/tenants/{id}/traces   retained request traces (?n= limit,
//	                                 ?anomalies=1 anomaly ring only)
//	GET    /v1/stats                 per-tenant rows + fair-share
//	                                 scheduler counters
//	GET    /healthz                  liveness (the process answers)
//	GET    /readyz                   readiness: per-tenant ok|degraded|
//	                                 quarantined state
//	GET    /metrics                  Prometheus text metrics (solver +
//	                                 per-tenant service families)
//	GET    /debug/vars, /debug/pprof/ introspection
//	GET    /debug/traces             every tenant's retained traces +
//	                                 trace-store admission counters
//
// Tracing: every request carries a trace ID (X-Request-Id in, echoed
// back out) whose spans cover quota admission, scheduler queue wait,
// the build span tree, and WAL append+fsync. -trace-retain bounds the
// per-tenant trace rings (0 = off), -trace-sample keeps 1-in-N normal
// traces (anomalies — errors, watchdog kills, stale serves,
// uncertified builds, slow requests past -trace-slow-threshold — are
// always retained), and -diag-dir roots the flight-recorder bundles
// dumped on watchdog kills, quarantines, and storage failures.
//
// Every error response uses one envelope:
//
//	{"error": {"code": "<symbol>", "message": "<detail>"}}
//
// with codes: bad_tenant_id, tenant_exists, tenant_not_found,
// tenant_quarantined, invalid_argument, invalid_point, empty_stream,
// quota_exceeded, overloaded, storage_unavailable, watchdog_killed,
// request_too_large, deadline_exceeded, service_closed, uncertified,
// internal.
//
// Durability: with -snapshot-dir set, -wal-sync selects the per-tenant
// write-ahead-log policy — "batch" (default: a 202 ingest ack means the
// batch is fsynced), "off" (log without fsync), a duration like "25ms"
// (group commit), or "none" (no WAL; the legacy checkpoint-window
// contract). A failing log refuses ingest with 503 storage_unavailable
// rather than acking points it cannot keep. On SIGTERM/SIGINT the
// server stops admitting work, drains in-flight requests and builds
// under -drain-timeout, writes a final checkpoint and WAL sync for
// every tenant, and exits 0.
//
// Degraded-mode serving: with -stale-max-age / -stale-max-points-behind
// set, a failed fresh build (overload, uncertified, deadline, watchdog
// kill) is answered from the tenant's last certified coreset when it is
// within bounds — marked with "stale": true, staleness metadata, and a
// Warning header, never silently. -build-watchdog arms a hard per-build
// slot budget so a wedged build cannot pin fleet capacity.
//
// Legacy unversioned routes (/ingest, /coreset, /summary, /stats,
// /checkpoint, /healthz) remain as aliases onto the "default" tenant —
// success responses are byte-identical to the single-tenant server —
// but carry a "Deprecation: true" header and log a one-time warning;
// migrate to /v1/tenants/default/....
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mincore"
	"mincore/internal/obs"
)

// defaultTenant is the tenant the legacy unversioned routes alias onto.
const defaultTenant = "default"

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 0, "default point dimension for tenant streams (required)")
	eps := flag.Float64("eps", 0.05, "default tenant ε (sketch sizing and default build ε)")
	alpha := flag.Float64("alpha", 0.25, "assumed stream fatness α for sketch sizing")
	seed := flag.Int64("seed", 1, "default tenant seed (direction net and builds)")
	snapshotDir := flag.String("snapshot-dir", "", "root directory for per-tenant snapshots and manifests (empty = no durability)")
	snapshotPath := flag.String("snapshot", "", "legacy single-file snapshot path for the default tenant (migration aid)")
	ckptEvery := flag.Duration("checkpoint-every", 10*time.Second, "base interval between automatic checkpoints")
	workers := flag.Int("ingest-workers", 2, "ingest worker goroutines per tenant (one summary shard each)")
	queue := flag.Int("queue", 256, "per-tenant ingest queue capacity in batches (full queue sheds with 503)")
	inflight := flag.Int("max-inflight-builds", 2, "concurrent coreset builds across ALL tenants (fair-share scheduled)")
	maxQueued := flag.Int("max-queued-builds", 16, "pending builds per tenant before shedding with 503")
	buildWorkers := flag.Int("build-workers", 0, "worker-pool size for builds (0 = GOMAXPROCS)")
	buildCache := flag.Int("build-cache", 0, "served-coreset cache entries per tenant (0 = default of 32, negative = disabled)")
	quota := flag.Float64("quota", 0, "default-tenant ingest quota in points/s (0 = unlimited; 429 when exceeded)")
	watchdog := flag.Duration("build-watchdog", 0, "hard per-build slot budget; a build holding its slot longer is killed and the slot reclaimed (0 = off)")
	staleMaxAge := flag.Duration("stale-max-age", 0, "serve the last certified coreset (marked stale) when a fresh build fails, if at most this old (0 = stale serving off)")
	staleBehind := flag.Int("stale-max-points-behind", 0, "additional stale-serving bound: max stream points the fallback may lag (0 = unbounded; needs -stale-max-age)")
	maxBody := flag.Int64("max-body-bytes", 8<<20, "largest accepted request body in bytes (413 beyond it)")
	walSync := flag.String("wal-sync", "batch", `write-ahead-log durability for snapshotted tenants: "batch" (fsync before acking), "off" (log without fsync), a group-commit window like "25ms", or "none" (no WAL)`)
	walSegBytes := flag.Int64("wal-segment-bytes", 4<<20, "write-ahead-log segment rotation threshold in bytes")
	traceRetain := flag.Int("trace-retain", 64, "retained traces per tenant per ring (anomaly and sampled-normal rings each; 0 = tracing off)")
	traceSample := flag.Int("trace-sample", 1, "keep 1 of every N normal (non-anomalous) traces; anomalies are always retained")
	traceSlow := flag.Duration("trace-slow-threshold", time.Second, "requests slower than this are retained as anomalies (0 = no slow flagging)")
	diagDir := flag.String("diag-dir", "", "root directory for flight-recorder diagnostic bundles (empty = <snapshot-dir>/<tenant>/diag when -snapshot-dir is set, else log-only)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: drain in-flight work and write final checkpoints within this window")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	flag.Parse()

	if *dim < 1 {
		fmt.Fprintln(os.Stderr, "mcserve: -dim is required")
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(2)
	}
	obs.Enable()
	obs.Default.PublishExpvar("mincore_metrics")

	var stale *mincore.StaleServePolicy
	if *staleMaxAge > 0 {
		stale = mincore.WithStaleServe(*staleMaxAge, *staleBehind)
	}
	walCfg, err := parseWALConfig(*walSync, *walSegBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(2)
	}
	var traces *obs.TraceStore
	if *traceRetain > 0 {
		traces = obs.NewTraceStore(obs.StoreOptions{
			Retain:        *traceRetain,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	reg, err := mincore.NewTenantRegistry(mincore.RegistryOptions{
		Dim: *dim, Eps: *eps, Alpha: *alpha, Seed: *seed,
		SnapshotDir:        *snapshotDir,
		CheckpointInterval: *ckptEvery,
		MaxInflightBuilds:  *inflight, MaxQueuedBuilds: *maxQueued,
		BuildWorkers:  *buildWorkers,
		IngestWorkers: *workers, QueueSize: *queue,
		BuildCache:  *buildCache,
		Logger:      logger,
		BuildBudget: *watchdog,
		StaleServe:  stale,
		WAL:         walCfg,
		TraceStore:  traces,
		DiagDir:     *diagDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserve:", err)
		os.Exit(1)
	}
	log := obs.Component(logger, "mcserve")

	// The default tenant backs the legacy unversioned routes. A restart
	// with -snapshot-dir restores it from its manifest; otherwise it is
	// created fresh, honoring the legacy -snapshot file override.
	if _, err := reg.Tenant(defaultTenant); errors.Is(err, mincore.ErrTenantNotFound) {
		_, err = reg.CreateTenant(mincore.TenantConfig{
			ID:                defaultTenant,
			SnapshotPath:      *snapshotPath,
			QuotaPointsPerSec: *quota,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcserve:", err)
			os.Exit(1)
		}
	}
	if t, err := reg.Tenant(defaultTenant); err == nil {
		if n := t.Service().RestoredPoints(); n > 0 {
			log.Info("recovered default-tenant snapshot; replay from restored position",
				slog.Int("restored_points", n))
		}
	}

	// Front-door hardening: a client that trickles headers or bodies, or
	// never reads its response, must not pin a connection (and its
	// goroutine) forever. WriteTimeout is generous because coreset builds
	// legitimately take a while; per-request ?timeout= bounds the build
	// itself.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(reg, log, *maxBody, traces),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		gracefulShutdown(sig, srv, reg, log, *drainTimeout)
	}()
	log.Info("mcserve listening",
		slog.String("addr", *addr), slog.Int("dim", *dim),
		slog.String("snapshot_dir", *snapshotDir))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listen failed", slog.Any("error", err))
		os.Exit(1)
	}
	<-done
}

// parseWALConfig maps the -wal-sync / -wal-segment-bytes flags onto the
// library's WALConfig: "none" disables the log entirely (nil config),
// "batch" and "off" select the named policies, and any parseable
// duration selects group commit with that window.
func parseWALConfig(sync string, segBytes int64) (*mincore.WALConfig, error) {
	cfg := &mincore.WALConfig{SegmentBytes: segBytes}
	switch sync {
	case "none":
		return nil, nil
	case "batch", "":
		cfg.Sync = mincore.WALSyncEveryBatch
	case "off":
		cfg.Sync = mincore.WALSyncOff
	default:
		d, err := time.ParseDuration(sync)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf(`-wal-sync %q: want "batch", "off", "none", or a positive duration`, sync)
		}
		cfg.Sync = mincore.WALSyncInterval
		cfg.SyncInterval = d
	}
	return cfg, nil
}

// gracefulShutdown blocks until a signal arrives on sig, then winds the
// process down in order: the HTTP server stops admitting new requests
// and drains the in-flight ones (ingest acks and running builds get to
// finish), then the registry closes every tenant — final checkpoint,
// WAL sync, scheduler stop — all under one drain budget. The signal
// channel is injected so tests drive the whole sequence synchronously.
func gracefulShutdown(sig <-chan os.Signal, srv *http.Server, reg *mincore.TenantRegistry, log *slog.Logger, timeout time.Duration) {
	<-sig
	log.Info("shutting down: refusing new work, draining in-flight builds, writing final checkpoints",
		slog.Duration("drain_timeout", timeout))
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("HTTP drain incomplete; closing registry anyway", slog.Any("error", err))
		}
	}
	if err := closeRegistry(ctx, reg); err != nil && !errors.Is(err, mincore.ErrRegistryClosed) {
		log.Error("registry shutdown", slog.Any("error", err))
		return
	}
	log.Info("shutdown complete: all tenants checkpointed and WALs synced")
}

// closeRegistry runs reg.Close under the drain deadline: Close drains
// each tenant's ingest queue, writes its final snapshot generation, and
// fsyncs+closes its WAL. A wedged tenant cannot hold shutdown hostage —
// past the deadline the registry is abandoned and the process exits.
func closeRegistry(ctx context.Context, reg *mincore.TenantRegistry) error {
	done := make(chan error, 1)
	go func() { done <- reg.Close() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("drain deadline exceeded: %w", ctx.Err())
	}
}

// apiServer binds the route handlers to a registry. Tenant-scoped
// handlers are written once and mounted twice: under /v1/tenants/{id}
// and — via legacyAlias — on the deprecated unversioned paths against
// the default tenant.
type apiServer struct {
	reg        *mincore.TenantRegistry
	log        *slog.Logger
	maxBody    int64           // largest accepted ingest body, in bytes
	traces     *obs.TraceStore // retained request traces; nil = tracing off
	deprecated sync.Once
}

// createBodyLimit bounds control-plane request bodies (tenant creation):
// far smaller than the ingest limit, since a config is a handful of
// scalars.
const createBodyLimit = 1 << 20

// newMux builds the full route table wrapped in the request-tracing
// and HTTP-metrics middleware. Split from main so tests can drive the
// handlers through httptest without a listener. maxBody bounds ingest
// request bodies; past it the request fails with the 413
// request_too_large envelope. traces is the retained trace store (nil
// disables tracing and the trace endpoints, metrics stay on).
func newMux(reg *mincore.TenantRegistry, log *slog.Logger, maxBody int64, traces *obs.TraceStore) http.Handler {
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	obs.Default.RegisterRuntimeGauges()
	api := &apiServer{reg: reg, log: log, maxBody: maxBody, traces: traces}
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/tenants", api.createTenant)
	mux.HandleFunc("GET /v1/tenants", api.listTenants)
	mux.HandleFunc("GET /v1/tenants/{id}", api.getTenant)
	mux.HandleFunc("DELETE /v1/tenants/{id}", api.deleteTenant)
	mux.HandleFunc("POST /v1/tenants/{id}/ingest", api.tenantH(api.ingest))
	mux.HandleFunc("GET /v1/tenants/{id}/coreset", api.tenantH(api.coreset))
	mux.HandleFunc("GET /v1/tenants/{id}/summary", api.tenantH(api.summary))
	mux.HandleFunc("GET /v1/tenants/{id}/stats", api.tenantH(api.tenantStats))
	mux.HandleFunc("POST /v1/tenants/{id}/snapshot", api.tenantH(api.snapshot))
	mux.HandleFunc("POST /v1/tenants/{id}/recover", api.recoverTenant)
	mux.HandleFunc("GET /v1/tenants/{id}/traces", api.tenantTraces)
	mux.HandleFunc("GET /v1/stats", api.registryStats)

	// Legacy unversioned aliases onto the default tenant (deprecated).
	mux.HandleFunc("POST /ingest", api.legacyAlias(api.ingest))
	mux.HandleFunc("GET /coreset", api.legacyAlias(api.coreset))
	mux.HandleFunc("GET /summary", api.legacyAlias(api.summary))
	mux.HandleFunc("GET /stats", api.legacyAlias(api.legacyStats))
	mux.HandleFunc("POST /checkpoint", api.legacyAlias(api.snapshot))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", api.readyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", api.debugTraces)
	// net/http/pprof registers on DefaultServeMux; mount its handlers
	// explicitly since this mux is not the default one.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return withTracing(mux, traces)
}

// tenantHandler is a handler scoped to one resolved tenant. legacy is
// true when the request arrived on a deprecated unversioned path.
type tenantHandler func(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool)

// tenantH resolves {id} and dispatches, mapping a missing tenant to
// the 404 envelope.
func (a *apiServer) tenantH(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := a.reg.Tenant(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		h(w, r, t, false)
	}
}

// legacyAlias mounts a tenant handler on a deprecated unversioned path
// against the default tenant, stamping the Deprecation header and
// logging a one-time migration warning.
func (a *apiServer) legacyAlias(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a.deprecated.Do(func() {
			a.log.Warn("legacy unversioned route used; migrate to /v1/tenants/default/...",
				slog.String("path", r.URL.Path))
		})
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/tenants/`+defaultTenant+`>; rel="successor-version"`)
		t, err := a.reg.Tenant(defaultTenant)
		if err != nil {
			httpError(w, err)
			return
		}
		h(w, r, t, true)
	}
}

// createTenantRequest is the POST /v1/tenants body; zero fields
// inherit the registry defaults.
type createTenantRequest struct {
	ID                string  `json:"id"`
	Dim               int     `json:"dim"`
	Eps               float64 `json:"eps"`
	Alpha             float64 `json:"alpha"`
	Directions        int     `json:"directions"`
	Seed              int64   `json:"seed"`
	Weight            float64 `json:"weight"`
	QuotaPointsPerSec float64 `json:"quota_points_per_sec"`
	QuotaBurst        int     `json:"quota_burst"`
	IngestWorkers     int     `json:"ingest_workers"`
	QueueSize         int     `json:"queue_size"`
	BuildCache        int     `json:"build_cache"`
}

// decodeBody decodes a JSON request body of at most limit bytes,
// rendering the envelope error itself (413 request_too_large past the
// limit, 400 invalid_argument otherwise). The bool reports success.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpErrorCode(w, http.StatusRequestEntityTooLarge, "request_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		httpErrorCode(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return false
	}
	return true
}

func (a *apiServer) createTenant(w http.ResponseWriter, r *http.Request) {
	var req createTenantRequest
	if !decodeBody(w, r, createBodyLimit, &req) {
		return
	}
	t, err := a.reg.CreateTenant(mincore.TenantConfig{
		ID: req.ID, Dim: req.Dim, Eps: req.Eps, Alpha: req.Alpha,
		Directions: req.Directions, Seed: req.Seed, Weight: req.Weight,
		QuotaPointsPerSec: req.QuotaPointsPerSec, QuotaBurst: req.QuotaBurst,
		IngestWorkers: req.IngestWorkers, QueueSize: req.QueueSize,
		BuildCache: req.BuildCache,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantInfoJSON(t))
}

func (a *apiServer) listTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": a.reg.ListTenants()})
}

func (a *apiServer) getTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, err := a.reg.Tenant(id)
	if err != nil {
		// A quarantined tenant is inspectable: the resource exists, it is
		// just not serving. 200 with health fields beats a bare 503 here —
		// the operator deciding whether to recover or delete needs the
		// reason, and the data plane still gets its 503 on every other
		// route.
		if h, ok := a.reg.QuarantineInfo(id); ok {
			writeJSON(w, http.StatusOK, map[string]any{
				"id": id, "state": h.State, "health": h,
			})
			return
		}
		httpError(w, err)
		return
	}
	info := tenantInfoJSON(t)
	info["state"] = "ok"
	if t.Stats().Degraded {
		info["state"] = "degraded"
	}
	writeJSON(w, http.StatusOK, info)
}

// recoverTenant is POST /v1/tenants/{id}/recover: repair a quarantined
// tenant in place (manifest rewrite, snapshot-generation fallback, or
// stream reset — whichever rung of the ladder works first) without a
// process restart.
func (a *apiServer) recoverTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, step, err := a.reg.RecoverTenant(id)
	if err != nil {
		httpError(w, err)
		return
	}
	a.log.Info("tenant recovered via API",
		slog.String("tenant", id), slog.String("step", step))
	writeJSON(w, http.StatusOK, map[string]any{
		"recovered": id,
		"step":      step,
		"stream_n":  t.Service().StreamN(),
	})
}

// readyz is the readiness probe: 200 while the registry serves, with the
// per-tenant degraded-mode state machine rendered so orchestrators and
// operators see partial failure (k of N quarantined) without the whole
// process being marked down — that would turn one corrupt tenant into a
// fleet outage, the exact opposite of quarantine.
func (a *apiServer) readyz(w http.ResponseWriter, r *http.Request) {
	health := a.reg.Health()
	status := "ok"
	counts := map[string]int{}
	for _, h := range health {
		counts[h.State]++
		if h.State != "ok" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"counts":  counts,
		"tenants": health,
	})
}

func (a *apiServer) deleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.reg.DeleteTenant(id); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func tenantInfoJSON(t *mincore.Tenant) map[string]any {
	cfg := t.Config()
	return map[string]any{
		"id": cfg.ID, "dim": cfg.Dim, "eps": cfg.Eps, "alpha": cfg.Alpha,
		"seed": cfg.Seed, "weight": cfg.Weight,
		"quota_points_per_sec": cfg.QuotaPointsPerSec,
		"stream_n":             t.Service().StreamN(),
	}
}

func (a *apiServer) ingest(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	var req struct {
		Points []mincore.Point `json:"points"`
	}
	if !decodeBody(w, r, a.maxBody, &req) {
		return
	}
	if err := t.FeedCtx(r.Context(), req.Points...); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"ingested": len(req.Points)})
}

func (a *apiServer) coreset(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	epsQ := 0.0 // 0 = the tenant's default ε
	if v := r.URL.Query().Get("eps"); v != "" {
		if _, err := fmt.Sscanf(v, "%g", &epsQ); err != nil {
			httpErrorCode(w, http.StatusBadRequest, "invalid_argument", fmt.Sprintf("bad eps %q", v))
			return
		}
	} else if legacy {
		epsQ = 0.05 // the historical unversioned default
	}
	algo := mincore.Auto
	if v := r.URL.Query().Get("algo"); v != "" {
		algo = mincore.Algorithm(v)
	}
	ctx := r.Context() // client disconnect cancels the build
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpErrorCode(w, http.StatusBadRequest, "invalid_argument", fmt.Sprintf("bad timeout %q", v))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	q, err := t.Coreset(ctx, epsQ, algo)
	if err != nil {
		httpError(w, err)
		return
	}
	if rep := q.Report; rep != nil {
		a.log.Info("build served",
			slog.String("tenant", t.ID()),
			slog.String("algorithm", string(rep.Algorithm)),
			slog.Float64("eps", rep.Eps),
			slog.Float64("certified_loss", rep.CertifiedLoss),
			slog.Bool("certified", rep.Certified),
			slog.Bool("stale", rep.Stale),
			slog.Int("size", q.Size()),
			slog.Int("attempts", rep.Attempts),
			slog.Duration("wall", rep.Wall),
			slog.String("spans", rep.Trace.Summary()))
	}
	resp := map[string]any{
		"size": q.Size(), "eps": q.Eps, "loss": q.Loss,
		"algorithm": q.Algorithm, "points": q.Points, "report": q.Report,
	}
	if rep := q.Report; rep != nil && rep.Stale {
		// Degraded mode is never silent: the body says stale and how far
		// behind, and the header flags it for clients that only look at
		// metadata (RFC 9111 110 = "response is stale").
		w.Header().Set("Warning", `110 - "stale coreset: degraded-mode fallback"`)
		resp["stale"] = true
		if sm := rep.Staleness; sm != nil {
			resp["staleness"] = map[string]any{
				"built_at":      sm.BuiltAt.Format(time.RFC3339Nano),
				"age_seconds":   sm.Age.Seconds(),
				"stream_n":      sm.StreamN,
				"points_behind": sm.PointsBehind,
				"reason":        sm.Reason,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *apiServer) summary(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	ss, err := t.Service().Summary()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n": ss.N(), "size": ss.Size(), "points": ss.Coreset(),
	})
}

// statsPayload renders one tenant's counters. The legacy shape omits
// the keys added with multi-tenancy so the unversioned /stats response
// stays byte-identical to the single-tenant server.
func statsPayload(t *mincore.Tenant, legacy bool) map[string]any {
	st := t.Stats()
	resp := map[string]any{
		"ingested": st.Ingested, "rejected": st.Rejected, "invalid": st.Invalid,
		"worker_panics": st.WorkerPanics,
		"builds":        st.Builds, "builds_shed": st.BuildsShed,
		"cache_hits":            st.CacheHits,
		"cache_misses":          st.CacheMisses,
		"restored_points":       st.RestoredPoints,
		"stream_n":              t.Service().StreamN(),
		"checkpoint_generation": st.CheckpointGeneration,
		"checkpoint_points":     st.CheckpointPoints,
		"checkpoint_failures":   st.CheckpointFailures,
	}
	if !legacy {
		resp["tenant"] = st.Tenant
		resp["quota_shed"] = st.QuotaShed
		resp["stale_served"] = st.StaleServed
		resp["degraded"] = st.Degraded
		resp["replayed_points"] = st.ReplayedPoints
		resp["wal_segments"] = st.WALSegments
		resp["wal_bytes"] = st.WALBytes
		resp["storage_degraded"] = st.StorageDegraded
	}
	if !st.LastCheckpoint.IsZero() {
		resp["last_checkpoint"] = st.LastCheckpoint.Format(time.RFC3339Nano)
		resp["checkpoint_lag_seconds"] = st.CheckpointLag.Seconds()
	}
	if st.LastError != nil {
		resp["last_error"] = st.LastError.Error()
	}
	return resp
}

func (a *apiServer) tenantStats(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	writeJSON(w, http.StatusOK, statsPayload(t, false))
}

// legacyStats is the unversioned /stats alias: the PR-5 response shape,
// exactly.
func (a *apiServer) legacyStats(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	writeJSON(w, http.StatusOK, statsPayload(t, true))
}

func (a *apiServer) snapshot(w http.ResponseWriter, r *http.Request, t *mincore.Tenant, legacy bool) {
	if err := t.CheckpointCtx(r.Context()); err != nil {
		httpError(w, err)
		return
	}
	st := t.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": st.CheckpointGeneration, "points": st.CheckpointPoints,
	})
}

// registryStats renders GET /v1/stats: one row per tenant plus the
// fair-share scheduler counters.
func (a *apiServer) registryStats(w http.ResponseWriter, r *http.Request) {
	st := a.reg.Stats()
	tenants := map[string]any{}
	for _, ts := range st.Tenants {
		if t, err := a.reg.Tenant(ts.Tenant); err == nil {
			tenants[ts.Tenant] = statsPayload(t, false)
		}
	}
	health := a.reg.Health()
	quarantined := make([]mincore.TenantHealth, 0)
	for _, h := range health {
		if h.State == "quarantined" {
			quarantined = append(quarantined, h)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant_count": len(st.Tenants),
		"tenants":      tenants,
		"quarantined":  quarantined,
		"scheduler": map[string]any{
			"inflight":       st.Scheduler.Inflight,
			"rounds":         st.Scheduler.Rounds,
			"grants":         st.Scheduler.Grants,
			"pending":        st.Scheduler.Pending,
			"tenant_grants":  st.Scheduler.TenantGrants,
			"watchdog_kills": st.Scheduler.WatchdogKills,
		},
	})
}

// errorCode maps the library's typed errors onto the documented
// (status, code) set of the JSON error envelope.
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, mincore.ErrBadTenantID):
		return http.StatusBadRequest, "bad_tenant_id"
	case errors.Is(err, mincore.ErrTenantExists):
		return http.StatusConflict, "tenant_exists"
	case errors.Is(err, mincore.ErrTenantNotFound):
		return http.StatusNotFound, "tenant_not_found"
	case errors.Is(err, mincore.ErrTenantQuarantined):
		return http.StatusServiceUnavailable, "tenant_quarantined"
	case errors.Is(err, mincore.ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota_exceeded"
	case errors.Is(err, mincore.ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, mincore.ErrStorageUnavailable):
		// The WAL refused the batch: nothing was acknowledged, nothing
		// ingested. Retryable — one successful write clears the state.
		return http.StatusServiceUnavailable, "storage_unavailable"
	case errors.Is(err, mincore.ErrWatchdogKilled):
		return http.StatusServiceUnavailable, "watchdog_killed"
	case errors.Is(err, mincore.ErrInvalidPoint):
		return http.StatusBadRequest, "invalid_point"
	case errors.Is(err, mincore.ErrUnknownAlgorithm):
		return http.StatusBadRequest, "invalid_argument"
	case errors.Is(err, mincore.ErrEmptyInput):
		return http.StatusConflict, "empty_stream"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, mincore.ErrServiceClosed), errors.Is(err, mincore.ErrRegistryClosed):
		return http.StatusServiceUnavailable, "service_closed"
	case errors.Is(err, mincore.ErrUncertified):
		return http.StatusInternalServerError, "uncertified"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeJSON sets the JSON content type before the status line — every
// JSON-producing handler funnels through here or httpError.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// httpError renders a typed error with the standard envelope.
func httpError(w http.ResponseWriter, err error) {
	status, code := errorCode(err)
	httpErrorCode(w, status, code, err.Error())
}

// httpErrorCode renders the single JSON error envelope used by every
// handler: {"error": {"code": ..., "message": ...}}. Shed responses
// carry Retry-After so well-behaved clients back off.
func httpErrorCode(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}
