package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mincore"
	"mincore/internal/obs"
)

// testMaxBody is the ingest body cap the test mux runs with: small
// enough for the 413 table test to hit without building huge payloads,
// large enough that every other test's batches pass untouched.
const testMaxBody = 256 << 10

// newTestServer builds the real route table over a live tenant
// registry (with the default tenant the legacy routes alias onto),
// exactly as main() does minus the listener and signal handling.
func newTestServer(t *testing.T, opts mincore.RegistryOptions) (*httptest.Server, *mincore.TenantRegistry) {
	t.Helper()
	obs.Enable()
	if opts.CheckpointInterval == 0 {
		opts.CheckpointInterval = -1
	}
	reg, err := mincore.NewTenantRegistry(opts)
	if err != nil {
		t.Fatalf("NewTenantRegistry: %v", err)
	}
	if _, err := reg.Tenant(defaultTenant); err != nil {
		if _, err := reg.CreateTenant(mincore.TenantConfig{ID: defaultTenant}); err != nil {
			t.Fatalf("create default tenant: %v", err)
		}
	}
	t.Cleanup(func() { reg.Close() })
	ts := httptest.NewServer(newMux(reg, obs.Discard(), testMaxBody, opts.TraceStore))
	t.Cleanup(ts.Close)
	return ts, reg
}

func feedPoints(t *testing.T, ts *httptest.Server, path string, pts [][]float64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"points": pts})
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 7})

	pts := make([][]float64, 0, 64)
	for i := 0; i < 64; i++ {
		pts = append(pts, []float64{float64(i%17) / 17, float64((i*7)%13) / 13})
	}
	feedPoints(t, ts, "/ingest", pts)

	// A build exercises the solver metric families before the scrape;
	// repeating it hits the served-coreset cache, so the cache families
	// carry non-zero samples too.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/coreset?eps=0.2")
		if err != nil {
			t.Fatalf("GET /coreset: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /coreset: status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain prefix", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	fams := map[string]bool{}
	for k := range samples {
		name, _, _ := strings.Cut(k, "{")
		name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if strings.HasPrefix(name, "mincore_") {
			fams[name] = true
		}
	}
	if len(fams) < 10 {
		t.Errorf("scrape exposes %d mincore_ families, want >= 10: %v", len(fams), fams)
	}
	for _, want := range []string{"mincore_ingest_points_total", "mincore_serve_build_requests_total"} {
		found := false
		for k := range samples {
			if strings.HasPrefix(k, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The build-cache families must be present per layer; the registry
	// routes everything through the default tenant, so the serve layer's
	// series carry the tenant label while the coreseter layer stays
	// process-global.
	for _, key := range []string{
		`mincore_build_cache_hits_total{layer="coreseter"}`,
		`mincore_build_cache_misses_total{layer="coreseter"}`,
		`mincore_build_cache_evictions_total{layer="serve",tenant="default"}`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("scrape missing sample %s", key)
		}
	}
	if v := samples[`mincore_build_cache_misses_total{layer="serve",tenant="default"}`]; v < 1 {
		t.Errorf(`serve cache misses = %v, want >= 1`, v)
	}
	if v := samples[`mincore_build_cache_hits_total{layer="serve",tenant="default"}`]; v < 1 {
		t.Errorf(`serve cache hits = %v, want >= 1`, v)
	}

	// /stats mirrors the serve-layer cache counters.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("/stats cache counters: hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestServeJSONContentType(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 7})
	feedPoints(t, ts, "/ingest", [][]float64{{0.2, 0.9}, {0.9, 0.2}, {0.6, 0.6}})

	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/stats", http.StatusOK},
		{"GET", "/summary", http.StatusOK},
		{"GET", "/coreset?eps=0.3", http.StatusOK},
		{"POST", "/checkpoint", http.StatusOK},
		{"GET", "/coreset?eps=nope", http.StatusBadRequest}, // error path too
		{"GET", "/v1/tenants", http.StatusOK},
		{"GET", "/v1/stats", http.StatusOK},
		{"GET", "/v1/tenants/nope/stats", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type = %q, want application/json", tc.method, tc.path, ct)
		}
	}
}

func TestServeStatsCheckpointLag(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, mincore.RegistryOptions{
		Dim: 2, Eps: 0.1, Seed: 7,
		SnapshotDir:        dir,
		CheckpointInterval: time.Hour, // only explicit checkpoints
	})
	feedPoints(t, ts, "/ingest", [][]float64{{0.1, 0.8}, {0.8, 0.1}})

	get := func() map[string]any {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatalf("GET /stats: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode /stats: %v", err)
		}
		return m
	}

	if m := get(); m["checkpoint_lag_seconds"] != nil {
		t.Errorf("checkpoint_lag_seconds present before any checkpoint: %v", m)
	}
	resp, err := http.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /checkpoint: %v", err)
	}
	resp.Body.Close()
	m := get()
	lag, ok := m["checkpoint_lag_seconds"].(float64)
	if !ok {
		t.Fatalf("checkpoint_lag_seconds missing after checkpoint: %v", m)
	}
	if lag < 0 || lag > 60 {
		t.Errorf("checkpoint_lag_seconds = %v, want small non-negative", lag)
	}
}

func TestServePprofAndExpvar(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 7})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestServeCoresetReportHasTrace(t *testing.T) {
	ts, _ := newTestServer(t, mincore.RegistryOptions{Dim: 2, Eps: 0.1, Seed: 7})
	pts := make([][]float64, 0, 32)
	for i := 0; i < 32; i++ {
		pts = append(pts, []float64{float64(i) / 32, float64((i*11)%32) / 32})
	}
	feedPoints(t, ts, "/ingest", pts)

	resp, err := http.Get(ts.URL + "/coreset?eps=0.2")
	if err != nil {
		t.Fatalf("GET /coreset: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /coreset: status %d", resp.StatusCode)
	}
	var out struct {
		Report struct {
			Trace *struct {
				Root *struct {
					Name     string            `json:"Name"`
					Children []json.RawMessage `json:"Children"`
				} `json:"Root"`
			} `json:"trace"`
		} `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /coreset: %v", err)
	}
	tr := out.Report.Trace
	if tr == nil || tr.Root == nil {
		t.Fatal("build report has no trace")
	}
	if tr.Root.Name != "build" {
		t.Errorf("trace root = %q, want \"build\"", tr.Root.Name)
	}
	if len(tr.Root.Children) == 0 {
		t.Error("trace root has no child spans")
	}
}

func TestErrorCodeMapping(t *testing.T) {
	for _, tc := range []struct {
		err      error
		want     int
		wantCode string
	}{
		{mincore.ErrOverloaded, http.StatusServiceUnavailable, "overloaded"},
		{mincore.ErrInvalidPoint, http.StatusBadRequest, "invalid_point"},
		{mincore.ErrQuotaExceeded, http.StatusTooManyRequests, "quota_exceeded"},
		{mincore.ErrTenantNotFound, http.StatusNotFound, "tenant_not_found"},
		{mincore.ErrTenantExists, http.StatusConflict, "tenant_exists"},
		{mincore.ErrBadTenantID, http.StatusBadRequest, "bad_tenant_id"},
		{mincore.ErrEmptyInput, http.StatusConflict, "empty_stream"},
		{mincore.ErrTenantQuarantined, http.StatusServiceUnavailable, "tenant_quarantined"},
		{mincore.ErrWatchdogKilled, http.StatusServiceUnavailable, "watchdog_killed"},
		{fmt.Errorf("wrapped: %w", mincore.ErrServiceClosed), http.StatusServiceUnavailable, "service_closed"},
		{fmt.Errorf("boom"), http.StatusInternalServerError, "internal"},
	} {
		status, code := errorCode(tc.err)
		if status != tc.want || code != tc.wantCode {
			t.Errorf("errorCode(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.want, tc.wantCode)
		}
	}
}
