module mincore

go 1.22
